module Graph = Mcl_flow.Graph
module Ns = Mcl_flow.Network_simplex
module Ssp = Mcl_flow.Ssp
module Mcf = Mcl_flow.Mcf
module Matching = Mcl_flow.Matching

(* ---------- hand-built instances ---------- *)

(* Classic transportation: 2 sources, 2 sinks. *)
let test_transport () =
  let g = Graph.create () in
  let s1 = Graph.add_node g ~supply:4 in
  let s2 = Graph.add_node g ~supply:3 in
  let t1 = Graph.add_node g ~supply:(-5) in
  let t2 = Graph.add_node g ~supply:(-2) in
  ignore (Graph.add_arc g ~src:s1 ~dst:t1 ~cap:10 ~cost:2);
  ignore (Graph.add_arc g ~src:s1 ~dst:t2 ~cap:10 ~cost:5);
  ignore (Graph.add_arc g ~src:s2 ~dst:t1 ~cap:10 ~cost:1);
  ignore (Graph.add_arc g ~src:s2 ~dst:t2 ~cap:10 ~cost:2);
  (* optimum: s2->t2 2 (cost 4), s2->t1 1 (1), s1->t1 4 (8) => 13 *)
  let r = Ns.solve g in
  Alcotest.(check bool) "optimal" true (r.Ns.status = Ns.Optimal);
  Alcotest.(check int) "cost" 13 r.Ns.total_cost;
  (match Ns.check_optimality g r with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let r2 = Ssp.solve g in
  Alcotest.(check int) "ssp agrees" 13 r2.Ssp.total_cost

(* Negative-cost circulation: profitable cycle must be saturated. *)
let test_negative_circulation () =
  let g = Graph.create () in
  let a = Graph.add_node g ~supply:0 in
  let b = Graph.add_node g ~supply:0 in
  let c = Graph.add_node g ~supply:0 in
  ignore (Graph.add_arc g ~src:a ~dst:b ~cap:5 ~cost:(-4));
  ignore (Graph.add_arc g ~src:b ~dst:c ~cap:3 ~cost:1);
  ignore (Graph.add_arc g ~src:c ~dst:a ~cap:7 ~cost:1);
  (* cycle cost -2, bottleneck 3 -> total -6 *)
  let r = Ns.solve g in
  Alcotest.(check int) "cost" (-6) r.Ns.total_cost;
  (match Ns.check_optimality g r with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let r2 = Ssp.solve g in
  Alcotest.(check int) "ssp agrees" (-6) r2.Ssp.total_cost

let test_infeasible () =
  let g = Graph.create () in
  let s = Graph.add_node g ~supply:5 in
  let t = Graph.add_node g ~supply:(-5) in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:3 ~cost:1);
  let r = Ns.solve g in
  Alcotest.(check bool) "infeasible" true (r.Ns.status = Ns.Infeasible);
  let r2 = Ssp.solve g in
  Alcotest.(check bool) "ssp infeasible" true (r2.Ssp.status = Ssp.Infeasible)

let test_first_eligible_agrees () =
  let g = Graph.create () in
  let s = Graph.add_node g ~supply:6 in
  let a = Graph.add_node g ~supply:0 in
  let b = Graph.add_node g ~supply:0 in
  let t = Graph.add_node g ~supply:(-6) in
  ignore (Graph.add_arc g ~src:s ~dst:a ~cap:4 ~cost:1);
  ignore (Graph.add_arc g ~src:s ~dst:b ~cap:4 ~cost:2);
  ignore (Graph.add_arc g ~src:a ~dst:b ~cap:2 ~cost:0);
  ignore (Graph.add_arc g ~src:a ~dst:t ~cap:3 ~cost:3);
  ignore (Graph.add_arc g ~src:b ~dst:t ~cap:4 ~cost:1);
  let r1 = Ns.solve ~pivot:Ns.Block_search g in
  let r2 = Ns.solve ~pivot:Ns.First_eligible g in
  Alcotest.(check int) "pivot rules agree" r1.Ns.total_cost r2.Ns.total_cost;
  (match Ns.check_optimality g r2 with
   | Ok () -> ()
   | Error m -> Alcotest.fail m)

let test_zero_capacity_arcs () =
  let g = Graph.create () in
  let s = Graph.add_node g ~supply:2 in
  let t = Graph.add_node g ~supply:(-2) in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:0 ~cost:(-100));
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:2 ~cost:3);
  let r = Ns.solve g in
  Alcotest.(check int) "zero-cap ignored" 6 r.Ns.total_cost;
  Alcotest.(check int) "zero-cap carries nothing" 0 r.Ns.flow.(0)

(* ---------- brute force cross-check ---------- *)

(* Exhaustively enumerate integer flows for tiny instances. *)
let brute_force g =
  let m = Graph.num_arcs g in
  let n = Graph.num_nodes g in
  let best = ref None in
  let flow = Array.make m 0 in
  let rec go a =
    if a = m then begin
      let excess = Array.make n 0 in
      for i = 0 to m - 1 do
        excess.(Graph.src g i) <- excess.(Graph.src g i) - flow.(i);
        excess.(Graph.dst g i) <- excess.(Graph.dst g i) + flow.(i)
      done;
      let feasible = ref true in
      for v = 0 to n - 1 do
        if excess.(v) + Graph.supply g v <> 0 then feasible := false
      done;
      if !feasible then begin
        let cost = ref 0 in
        for i = 0 to m - 1 do
          cost := !cost + (flow.(i) * Graph.cost g i)
        done;
        match !best with
        | Some b when b <= !cost -> ()
        | _ -> best := Some !cost
      end
    end
    else
      for f = 0 to Graph.cap g a do
        flow.(a) <- f;
        go (a + 1)
      done
  in
  go 0;
  !best

let random_small_instance rand =
  let open QCheck.Gen in
  let n = 2 + int_bound 3 rand in
  let m = 1 + int_bound 5 rand in
  let g = Graph.create () in
  (* random supplies that sum to zero *)
  let supplies = Array.init n (fun _ -> int_bound 4 rand - 2) in
  let total = Array.fold_left ( + ) 0 supplies in
  supplies.(0) <- supplies.(0) - total;
  Array.iter (fun s -> ignore (Graph.add_node g ~supply:s)) supplies;
  for _ = 1 to m do
    let s = int_bound (n - 1) rand and d = int_bound (n - 1) rand in
    if s <> d then
      ignore
        (Graph.add_arc g ~src:s ~dst:d ~cap:(int_bound 3 rand)
           ~cost:(int_bound 20 rand - 10))
  done;
  g

let prop_ns_matches_brute_force =
  QCheck.Test.make ~name:"network simplex == brute force (tiny instances)"
    ~count:300
    (QCheck.make random_small_instance)
    (fun g ->
       let brute = brute_force g in
       let r = Ns.solve g in
       match brute, r.Ns.status with
       | None, Ns.Infeasible -> true
       | None, Ns.Optimal -> false
       | Some _, Ns.Infeasible -> false
       | Some b, Ns.Optimal ->
         b = r.Ns.total_cost
         && (match Ns.check_optimality g r with Ok () -> true | Error _ -> false))

let prop_ns_matches_ssp =
  QCheck.Test.make ~name:"network simplex == SSP (medium random instances)"
    ~count:120
    (QCheck.make (fun rand ->
         let open QCheck.Gen in
         let n = 4 + int_bound 12 rand in
         let g = Graph.create () in
         let supplies = Array.init n (fun _ -> int_bound 10 rand - 5) in
         let total = Array.fold_left ( + ) 0 supplies in
         supplies.(0) <- supplies.(0) - total;
         Array.iter (fun s -> ignore (Graph.add_node g ~supply:s)) supplies;
         let m = n * 3 in
         for _ = 1 to m do
           let s = int_bound (n - 1) rand and d = int_bound (n - 1) rand in
           if s <> d then
             ignore
               (Graph.add_arc g ~src:s ~dst:d ~cap:(int_bound 8 rand)
                  ~cost:(int_bound 40 rand - 20))
         done;
         g))
    (fun g ->
       let r1 = Ns.solve g in
       let r2 = Ssp.solve g in
       let st1 = r1.Ns.status = Ns.Optimal and st2 = r2.Ssp.status = Ssp.Optimal in
       if st1 <> st2 then false
       else if not st1 then true
       else
         r1.Ns.total_cost = r2.Ssp.total_cost
         && (match Ns.check_optimality g r1 with Ok () -> true | Error _ -> false))

let prop_pivot_rules_agree =
  QCheck.Test.make ~name:"block-search == first-eligible pivots"
    ~count:100
    (QCheck.make random_small_instance)
    (fun g ->
       let r1 = Ns.solve ~pivot:Ns.Block_search g in
       let r2 = Ns.solve ~pivot:Ns.First_eligible g in
       r1.Ns.status = r2.Ns.status
       && (r1.Ns.status = Ns.Infeasible || r1.Ns.total_cost = r2.Ns.total_cost))

(* ---------- Prng-seeded solver cross-check ---------- *)

(* Same idea as prop_ns_matches_ssp, but driven by the repo's own
   deterministic Mcl_geom.Prng, so the exact instance sequence is
   reproducible from the seed alone (independent of QCheck's state). *)
let prng_instance prng =
  let module Prng = Mcl_geom.Prng in
  let n = Prng.int_in prng 2 10 in
  let g = Graph.create () in
  let supplies = Array.init n (fun _ -> Prng.int_in prng (-4) 4) in
  let total = Array.fold_left ( + ) 0 supplies in
  supplies.(0) <- supplies.(0) - total;
  Array.iter (fun s -> ignore (Graph.add_node g ~supply:s)) supplies;
  for _ = 1 to n * 3 do
    let s = Prng.int prng n and d = Prng.int prng n in
    if s <> d then
      ignore
        (Graph.add_arc g ~src:s ~dst:d ~cap:(Prng.int prng 7)
           ~cost:(Prng.int_in prng (-15) 15))
  done;
  g

let test_prng_solver_cross_check () =
  let prng = Mcl_geom.Prng.create 0xD0C_2018 in
  for i = 1 to 300 do
    let g = prng_instance prng in
    let r1 = Ns.solve g in
    let r2 = Ssp.solve g in
    (match r1.Ns.status, r2.Ssp.status with
     | Ns.Optimal, Ssp.Optimal ->
       if r1.Ns.total_cost <> r2.Ssp.total_cost then
         Alcotest.failf "instance %d: simplex cost %d <> ssp cost %d" i
           r1.Ns.total_cost r2.Ssp.total_cost;
       (match Ns.check_optimality g r1 with
        | Ok () -> ()
        | Error m -> Alcotest.failf "instance %d: %s" i m)
     | Ns.Infeasible, Ssp.Infeasible -> ()
     | st1, _ ->
       Alcotest.failf "instance %d: solvers disagree on feasibility (%s)" i
         (if st1 = Ns.Optimal then "simplex optimal, ssp infeasible"
          else "simplex infeasible, ssp optimal"))
  done

(* ---------- matching ---------- *)

let test_matching_identity () =
  let edges =
    List.init 4 (fun i -> Matching.{ left = i; right = i; edge_cost = 0 })
  in
  match Matching.solve ~n:4 ~edges with
  | Error m -> Alcotest.fail m
  | Ok mate -> Alcotest.(check (array int)) "identity" [| 0; 1; 2; 3 |] mate

let test_matching_swap_beneficial () =
  (* two cells, swapping is cheaper *)
  let edges =
    [ Matching.{ left = 0; right = 0; edge_cost = 10 };
      Matching.{ left = 0; right = 1; edge_cost = 1 };
      Matching.{ left = 1; right = 1; edge_cost = 10 };
      Matching.{ left = 1; right = 0; edge_cost = 1 } ]
  in
  match Matching.solve ~n:2 ~edges with
  | Error m -> Alcotest.fail m
  | Ok mate -> Alcotest.(check (array int)) "swapped" [| 1; 0 |] mate

let test_matching_infeasible () =
  let edges = [ Matching.{ left = 0; right = 0; edge_cost = 0 } ] in
  match Matching.solve ~n:2 ~edges with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected infeasible"

let brute_force_matching ~n ~edges =
  (* all permutations of 0..n-1 *)
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l)))
        l
  in
  let all = perms (List.init n (fun i -> i)) in
  List.filter_map
    (fun p ->
       let mate = Array.of_list p in
       Matching.assignment_cost ~n ~edges mate)
    all
  |> function
  | [] -> None
  | costs -> Some (List.fold_left min max_int costs)

let prop_matching_optimal =
  QCheck.Test.make ~name:"matching == brute force over permutations"
    ~count:200
    (QCheck.make (fun rand ->
         let open QCheck.Gen in
         let n = 1 + int_bound 4 rand in
         let edges = ref [] in
         (* identity edges guarantee feasibility *)
         for i = 0 to n - 1 do
           edges := Matching.{ left = i; right = i; edge_cost = int_bound 50 rand } :: !edges
         done;
         for _ = 1 to n * 2 do
           let l = int_bound (n - 1) rand and r = int_bound (n - 1) rand in
           edges := Matching.{ left = l; right = r; edge_cost = int_bound 50 rand } :: !edges
         done;
         (n, !edges)))
    (fun (n, edges) ->
       match Matching.solve ~n ~edges, brute_force_matching ~n ~edges with
       | Ok mate, Some best ->
         (match Matching.assignment_cost ~n ~edges mate with
          | Some c -> c = best
          | None -> false)
       | Error _, None -> true
       | _ -> false)

let test_mcf_facade () =
  let g = Graph.create () in
  let s = Graph.add_node g ~supply:1 in
  let t = Graph.add_node g ~supply:(-1) in
  ignore (Graph.add_arc g ~src:s ~dst:t ~cap:1 ~cost:7);
  List.iter
    (fun solver ->
       let r = Mcf.solve ~solver g in
       Alcotest.(check bool) "optimal" true (r.Mcf.status = `Optimal);
       Alcotest.(check int) "cost" 7 r.Mcf.total_cost)
    [ Mcf.Network_simplex_block; Mcf.Network_simplex_first; Mcf.Ssp ]

let () =
  Alcotest.run "flow"
    [ ("mcf-hand",
       [ Alcotest.test_case "transportation" `Quick test_transport;
         Alcotest.test_case "negative circulation" `Quick test_negative_circulation;
         Alcotest.test_case "infeasible" `Quick test_infeasible;
         Alcotest.test_case "pivot rules agree" `Quick test_first_eligible_agrees;
         Alcotest.test_case "zero capacity" `Quick test_zero_capacity_arcs;
         Alcotest.test_case "facade" `Quick test_mcf_facade ]);
      ("mcf-props",
       [ QCheck_alcotest.to_alcotest prop_ns_matches_brute_force;
         QCheck_alcotest.to_alcotest prop_ns_matches_ssp;
         QCheck_alcotest.to_alcotest prop_pivot_rules_agree;
         Alcotest.test_case "prng-seeded simplex == ssp" `Quick
           test_prng_solver_cross_check ]);
      ("matching",
       [ Alcotest.test_case "identity" `Quick test_matching_identity;
         Alcotest.test_case "beneficial swap" `Quick test_matching_swap_beneficial;
         Alcotest.test_case "infeasible" `Quick test_matching_infeasible;
         QCheck_alcotest.to_alcotest prop_matching_optimal ]) ]
