(* The resident ECO legalization service: JSON codec, protocol
   round-trips, structured error responses, rollback-on-failure, and
   batching (eco coalescing + independent-design dispatch). *)

module Json = Mcl_service.Json
module Engine = Mcl_service.Engine
module Protocol = Mcl_service.Protocol
module Batch = Mcl_service.Batch

let engine ?(threads = 1) () =
  Engine.create ~threads ~config:Mcl.Config.default ()

let parse_exn line =
  match Json.parse line with
  | Ok j -> j
  | Error msg -> Alcotest.failf "bad response JSON: %s (%s)" msg line

let str path j =
  match Json.get_string path j with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %S in %s" path (Json.to_string j)

let handle eng line = parse_exn (Engine.handle_line eng line)

let check_ok what resp =
  Alcotest.(check string) (what ^ " status") "ok" (str "status" resp)

let result_exn resp =
  match Json.member "result" resp with
  | Some r -> r
  | None -> Alcotest.failf "no result in %s" (Json.to_string resp)

(* ---------------------------------------------------------------- *)
(* JSON codec                                                        *)
(* ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let cases =
    [ {|{"a":1,"b":[true,false,null],"c":"x\"y\n","d":-2.5e3}|};
      {|[1,2,3]|}; {|"hello"|}; {|{"nested":{"deep":[{"k":0.125}]}}|} ]
  in
  List.iter
    (fun src ->
       match Json.parse src with
       | Error msg -> Alcotest.failf "parse %s: %s" src msg
       | Ok v ->
         (match Json.parse (Json.to_string v) with
          | Ok v' -> Alcotest.(check bool) ("roundtrip " ^ src) true (v = v')
          | Error msg -> Alcotest.failf "reparse %s: %s" src msg))
    cases;
  (* malformed inputs must report, not raise *)
  List.iter
    (fun src ->
       match Json.parse src with
       | Error _ -> ()
       | Ok _ -> Alcotest.failf "accepted malformed %s" src)
    [ "{nope"; "[1,2"; "\"unterminated"; "{} trailing"; "01x"; "" ];
  (* \u escapes decode to UTF-8 *)
  match Json.parse {|"Aé"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "utf8" "A\xc3\xa9" s
  | _ -> Alcotest.fail "\\u escape"

(* ---------------------------------------------------------------- *)
(* Protocol round-trip: load -> legalize -> eco -> query             *)
(* ---------------------------------------------------------------- *)

let test_round_trip () =
  let eng = engine () in
  let load =
    handle eng {|{"id":"l","op":"load","design":"d","cells":300,"seed":11}|}
  in
  check_ok "load" load;
  Alcotest.(check string) "load id echoed" "l" (str "id" load);
  Alcotest.(check (option int)) "cells" (Some 300)
    (Json.get_int "cells" (result_exn load));
  let leg = handle eng {|{"id":"g","op":"legalize","design":"d"}|} in
  check_ok "legalize" leg;
  Alcotest.(check (option bool)) "legal after legalize" (Some true)
    (Json.get_bool "legal" (result_exn leg));
  let eco =
    handle eng {|{"id":"e","op":"eco","design":"d","cells":[3,14,15]}|}
  in
  check_ok "eco" eco;
  Alcotest.(check (option int)) "relegalized" (Some 3)
    (Json.get_int "relegalized" (result_exn eco));
  (match Json.member "metrics" eco with
   | Some m ->
     Alcotest.(check (option int)) "cells_touched" (Some 3)
       (Json.get_int "cells_touched" m);
     Alcotest.(check bool) "service_s >= 0" true
       (match Json.get_float "service_s" m with
        | Some s -> s >= 0.0
        | None -> false)
   | None -> Alcotest.fail "eco response has no metrics");
  let q = handle eng {|{"id":"q","op":"query","design":"d"}|} in
  check_ok "query" q;
  Alcotest.(check (option bool)) "legal after eco" (Some true)
    (Json.get_bool "legal" (result_exn q));
  Alcotest.(check (option int)) "eco_count" (Some 1)
    (Json.get_int "eco_count" (result_exn q));
  (* lint + audit + stats also answer over the same design *)
  check_ok "lint" (handle eng {|{"op":"lint","design":"d"}|});
  check_ok "audit" (handle eng {|{"op":"audit","design":"d"}|});
  let stats = handle eng {|{"op":"stats"}|} in
  check_ok "stats" stats;
  let counters =
    match Json.member "counters" (result_exn stats) with
    | Some c -> c
    | None -> Alcotest.fail "stats without counters"
  in
  Alcotest.(check bool) "requests counted" true
    (match Json.get_int "requests_total" counters with
     | Some n -> n >= 6
     | None -> false)

(* ---------------------------------------------------------------- *)
(* Structured errors                                                 *)
(* ---------------------------------------------------------------- *)

let error_code resp =
  match Json.member "error" resp with
  | Some e -> str "code" e
  | None -> Alcotest.failf "no error body in %s" (Json.to_string resp)

let test_errors () =
  let eng = engine () in
  let bad = handle eng "{this is not json" in
  Alcotest.(check string) "parse status" "error" (str "status" bad);
  Alcotest.(check string) "parse code" "P401-parse-error" (error_code bad);
  let arr = handle eng "[1,2,3]" in
  Alcotest.(check string) "non-object code" "P401-parse-error" (error_code arr);
  let noop = handle eng {|{"design":"d"}|} in
  Alcotest.(check string) "missing op" "P402-bad-request" (error_code noop);
  let unk = handle eng {|{"op":"frobnicate"}|} in
  Alcotest.(check string) "unknown op" "P403-unknown-op" (error_code unk);
  let missing = handle eng {|{"op":"eco","design":"ghost","cells":[1]}|} in
  Alcotest.(check string) "unknown design" "P404-unknown-design"
    (error_code missing);
  let suite = handle eng {|{"op":"load","design":"d","suite":"no_such"}|} in
  Alcotest.(check string) "unknown suite" "P405-unknown-suite" (error_code suite);
  let empty_eco = handle eng {|{"op":"eco","design":"d"}|} in
  Alcotest.(check string) "empty eco" "P402-bad-request" (error_code empty_eco)

(* An infeasible ECO returns a typed S3xx error and the engine keeps
   serving; the failed mutation rolls back to a legal design. *)
let test_infeasible_eco_and_rollback () =
  let eng = engine () in
  check_ok "load"
    (handle eng {|{"op":"load","design":"d","cells":250,"seed":3}|});
  check_ok "legalize" (handle eng {|{"op":"legalize","design":"d"}|});
  (* unknown cell id: infeasible request, S302 *)
  let r = handle eng {|{"op":"eco","design":"d","cells":[99999]}|} in
  Alcotest.(check string) "status" "error" (str "status" r);
  Alcotest.(check string) "code" "S302-eco-unknown-cell" (error_code r);
  (* diagnostics ride along in the error body *)
  (match Json.member "error" r with
   | Some e ->
     (match Json.get_list "diagnostics" e with
      | Some (d :: _) ->
        Alcotest.(check (option string)) "diag code"
          (Some "S302-eco-unknown-cell") (Json.get_string "code" d)
      | _ -> Alcotest.fail "no diagnostics in error body")
   | None -> Alcotest.fail "no error body");
  (* a failing eco that *did* start mutating (target rebinding) rolls
     back: target a movable cell but include a bogus one in the same
     request *)
  let q1 = handle eng {|{"op":"query","design":"d"}|} in
  let before = Json.get_float "total_disp_sites" (result_exn q1) in
  let mixed =
    handle eng
      {|{"op":"eco","design":"d","cells":[99999],"targets":[[5,[10,1]]]}|}
  in
  Alcotest.(check string) "mixed status" "error" (str "status" mixed);
  let q2 = handle eng {|{"op":"query","design":"d"}|} in
  Alcotest.(check (option bool)) "still legal" (Some true)
    (Json.get_bool "legal" (result_exn q2));
  Alcotest.(check bool) "placement untouched" true
    (before = Json.get_float "total_disp_sites" (result_exn q2));
  (* engine is still alive and serving *)
  check_ok "still serving" (handle eng {|{"op":"query","design":"d"}|})

(* ---------------------------------------------------------------- *)
(* Batching: coalescing + independent-design dispatch                *)
(* ---------------------------------------------------------------- *)

let requests_of lines =
  let now = Unix.gettimeofday () in
  Array.of_list
    (List.mapi
       (fun i line ->
          match
            Protocol.parse ~received:now
              ~default_id:(Printf.sprintf "req-%d" (i + 1)) line
          with
          | Ok r -> r
          | Error e -> Alcotest.failf "request %d rejected: %s" i e.Protocol.message)
       lines)

let test_eco_coalescing () =
  let eng = engine () in
  check_ok "load"
    (handle eng {|{"op":"load","design":"d","cells":300,"seed":7}|});
  check_ok "legalize" (handle eng {|{"op":"legalize","design":"d"}|});
  let reqs =
    requests_of
      [ {|{"id":"a","op":"eco","design":"d","cells":[1,2]}|};
        {|{"id":"b","op":"eco","design":"d","cells":[30,31]}|};
        {|{"id":"c","op":"query","design":"d"}|} ]
  in
  let resps = Engine.execute eng reqs in
  Alcotest.(check int) "three responses" 3 (Array.length resps);
  Array.iter
    (fun r ->
       let j = parse_exn (Protocol.to_line r) in
       Alcotest.(check string) ("ok " ^ str "id" j) "ok" (str "status" j))
    resps;
  (* both ecos ran as one merged relegalize call *)
  Array.iteri
    (fun i r ->
       if i < 2 then
         match r.Protocol.metrics with
         | Some m ->
           Alcotest.(check int) "coalesced" 2 m.Protocol.coalesced;
           Alcotest.(check int) "own cells" 2 m.Protocol.cells_touched
         | None -> Alcotest.fail "eco without metrics")
    resps;
  (* the merged run relegalized all four cells *)
  let j0 = parse_exn (Protocol.to_line resps.(0)) in
  Alcotest.(check (option int)) "merged relegalized" (Some 4)
    (Json.get_int "relegalized" (result_exn j0));
  (* the query (after the ecos in batch order) still sees a legal design *)
  let jq = parse_exn (Protocol.to_line resps.(2)) in
  Alcotest.(check (option bool)) "legal" (Some true)
    (Json.get_bool "legal" (result_exn jq))

(* A bad request coalesced with a good one must not poison it: the
   merged run fails, rolls back, and the members retry individually. *)
let test_coalesced_failure_retries_individually () =
  let eng = engine () in
  check_ok "load"
    (handle eng {|{"op":"load","design":"d","cells":300,"seed":9}|});
  check_ok "legalize" (handle eng {|{"op":"legalize","design":"d"}|});
  let reqs =
    requests_of
      [ {|{"id":"good","op":"eco","design":"d","cells":[4,5]}|};
        {|{"id":"bad","op":"eco","design":"d","cells":[99999]}|} ]
  in
  let resps = Engine.execute eng reqs in
  let j_good = parse_exn (Protocol.to_line resps.(0)) in
  let j_bad = parse_exn (Protocol.to_line resps.(1)) in
  Alcotest.(check string) "good succeeds" "ok" (str "status" j_good);
  Alcotest.(check string) "bad fails" "error" (str "status" j_bad);
  Alcotest.(check string) "bad code" "S302-eco-unknown-cell" (error_code j_bad);
  (* the retried good request ran alone *)
  (match resps.(0).Protocol.metrics with
   | Some m -> Alcotest.(check int) "retried solo" 1 m.Protocol.coalesced
   | None -> Alcotest.fail "good eco without metrics");
  let q = handle eng {|{"op":"query","design":"d"}|} in
  Alcotest.(check (option bool)) "still legal" (Some true)
    (Json.get_bool "legal" (result_exn q));
  Alcotest.(check (option int)) "one eco applied" (Some 1)
    (Json.get_int "eco_count" (result_exn q))

let test_parallel_designs () =
  let eng = engine ~threads:4 () in
  check_ok "load a" (handle eng {|{"op":"load","design":"a","cells":200,"seed":1}|});
  check_ok "load b" (handle eng {|{"op":"load","design":"b","cells":200,"seed":2}|});
  let reqs =
    requests_of
      [ {|{"op":"legalize","design":"a"}|};
        {|{"op":"legalize","design":"b"}|};
        {|{"op":"query","design":"a"}|};
        {|{"op":"query","design":"b"}|} ]
  in
  let resps = Engine.execute eng reqs in
  Array.iter
    (fun r ->
       let j = parse_exn (Protocol.to_line r) in
       Alcotest.(check string) "ok" "ok" (str "status" j);
       match Json.get_bool "legal" (result_exn j) with
       | Some legal -> Alcotest.(check bool) "legal" true legal
       | None -> ())
    resps

(* The batch planner: globals split segments, groups preserve order,
   eco runs are maximal and adjacent-only. *)
let test_batch_plan () =
  let now = Unix.gettimeofday () in
  let req line =
    match Protocol.parse ~received:now ~default_id:"x" line with
    | Ok r -> r
    | Error _ -> Alcotest.fail "plan request"
  in
  let reqs =
    [| req {|{"op":"eco","design":"a","cells":[1]}|};
       req {|{"op":"eco","design":"b","cells":[1]}|};
       req {|{"op":"eco","design":"a","cells":[2]}|};
       req {|{"op":"load","design":"c"}|};
       req {|{"op":"query","design":"a"}|} |]
  in
  match Batch.plan reqs with
  | [ Batch.Groups g1; Batch.Global (3, _); Batch.Groups g2 ] ->
    Alcotest.(check (list string)) "segment 1 keys" [ "a"; "b" ]
      (List.map fst g1);
    Alcotest.(check (list (list int))) "segment 1 indices" [ [ 0; 2 ]; [ 1 ] ]
      (List.map (fun (_, rs) -> List.map fst rs) g1);
    Alcotest.(check (list string)) "segment 2 keys" [ "a" ] (List.map fst g2);
    (* design a's group is one eco run of length 2 *)
    (match Batch.eco_runs (List.assoc "a" g1) with
     | [ `Eco [ _; _ ] ] -> ()
     | _ -> Alcotest.fail "expected one eco run of length 2")
  | other ->
    Alcotest.failf "unexpected plan shape (%d segments)" (List.length other)

(* ---------------------------------------------------------------- *)
(* stats determinism                                                 *)
(* ---------------------------------------------------------------- *)

(* The per-op request listing must not depend on the order ops were
   first seen (it used to come straight out of Hashtbl.fold). *)
let test_telemetry_stats_order_independent () =
  let feed t ops =
    List.iter
      (fun op ->
         Mcl_service.Telemetry.record t ~op ~ok:true ~service_s:0.0 ~cells:1
           ~coalesced_extra:0)
      ops
  in
  let t1 = Mcl_service.Telemetry.create () in
  let t2 = Mcl_service.Telemetry.create () in
  feed t1 [ "query"; "eco"; "load"; "eco"; "legalize" ];
  feed t2 [ "legalize"; "eco"; "query"; "eco"; "load" ];
  let reqs t = (Mcl_service.Telemetry.snapshot t).Mcl_service.Telemetry.requests in
  Alcotest.(check (list (pair string int)))
    "sorted by op name"
    [ ("eco", 2); ("legalize", 1); ("load", 1); ("query", 1) ]
    (reqs t1);
  Alcotest.(check (list (pair string int))) "insertion-order independent"
    (reqs t1) (reqs t2);
  (* and the JSON listing is byte-identical across the two instances *)
  let requests_json t =
    match Json.member "requests" (Mcl_service.Telemetry.to_json t) with
    | Some j -> Json.to_string j
    | None -> Alcotest.fail "no requests field"
  in
  Alcotest.(check string) "byte-stable requests JSON" (requests_json t1)
    (requests_json t2)

let test_cache_entries_sorted () =
  let design () =
    Mcl_gen.Generator.generate
      { Mcl_gen.Spec.default with Mcl_gen.Spec.seed = 1; num_cells = 10 }
  in
  let entry key =
    { Mcl_service.Cache.key; design = design (); gp_hpwl = 0; source = "test";
      load_wire = ""; loaded_at = 0.0; legalized = false; eco_count = 0;
      congest = None; refine = None; dirty = false; pinned = false;
      last_used = 0; dedup = [] }
  in
  let keys cache =
    List.map
      (fun (e : Mcl_service.Cache.entry) -> e.Mcl_service.Cache.key)
      (Mcl_service.Cache.entries cache)
  in
  let c1 = Mcl_service.Cache.create () in
  List.iter (fun k -> ignore (Mcl_service.Cache.put c1 (entry k))) [ "zeta"; "alpha"; "mid" ];
  let c2 = Mcl_service.Cache.create () in
  List.iter (fun k -> ignore (Mcl_service.Cache.put c2 (entry k))) [ "mid"; "zeta"; "alpha" ];
  Alcotest.(check (list string)) "sorted by key" [ "alpha"; "mid"; "zeta" ] (keys c1);
  Alcotest.(check (list string)) "insertion-order independent" (keys c1) (keys c2)

(* ---------------------------------------------------------------- *)
(* Log-bucketed latency histogram                                    *)
(* ---------------------------------------------------------------- *)

module H = Mcl_service.Histogram

let test_histogram_quantiles () =
  let h = H.create () in
  Alcotest.(check int) "empty count" 0 (H.count h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (H.quantile h 0.5);
  (* 1..1000 ms uniformly: quantiles must land within one log bucket
     (20 buckets/decade => ~12% width) of the exact answer *)
  for i = 1 to 1000 do
    H.add h (float_of_int i /. 1000.0)
  done;
  Alcotest.(check int) "count" 1000 (H.count h);
  Alcotest.(check (float 0.5)) "sum" 500.5 (H.sum h);
  Alcotest.(check (float 0.001)) "mean" 0.5005 (H.mean h);
  Alcotest.(check (float 1e-9)) "min exact" 0.001 (H.min_value h);
  Alcotest.(check (float 1e-9)) "max exact" 1.0 (H.max_value h);
  List.iter
    (fun q ->
       let got = H.quantile h q in
       let exact = q in
       if Float.abs (got -. exact) /. exact > 0.13 then
         Alcotest.failf "q%.2f: %f too far from %f" q got exact)
    [ 0.25; 0.5; 0.75; 0.95; 0.99 ];
  (* quantiles are clamped into the observed range *)
  Alcotest.(check bool) "p100 <= max" true (H.quantile h 1.0 <= H.max_value h);
  Alcotest.(check bool) "p0 >= min" true (H.quantile h 0.0 >= H.min_value h)

let test_histogram_merge_json () =
  let a = H.create () and b = H.create () in
  List.iter (H.add a) [ 0.001; 0.002; 0.003 ];
  List.iter (H.add b) [ 0.1; 0.2 ];
  H.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 5 (H.count a);
  Alcotest.(check (float 1e-9)) "merged max" 0.2 (H.max_value a);
  Alcotest.(check (float 1e-9)) "merged sum" 0.306 (H.sum a);
  (match H.to_json a with
   | Mcl_service.Json.Obj fields ->
     List.iter
       (fun k ->
          if not (List.mem_assoc k fields) then
            Alcotest.failf "to_json missing %s" k)
       [ "count"; "mean"; "min"; "max"; "p50"; "p95"; "p99" ]
   | _ -> Alcotest.fail "to_json not an object");
  H.clear a;
  Alcotest.(check int) "cleared" 0 (H.count a);
  (* out-of-domain samples clamp instead of crashing *)
  H.add a nan;
  H.add a (-1.0);
  H.add a infinity;
  Alcotest.(check int) "clamped samples counted" 3 (H.count a)

let test_cache_lru_policy () =
  let design () =
    Mcl_gen.Generator.generate
      { Mcl_gen.Spec.default with Mcl_gen.Spec.seed = 1; num_cells = 10 }
  in
  let entry key =
    { Mcl_service.Cache.key; design = design (); gp_hpwl = 0; source = "test";
      load_wire = ""; loaded_at = 0.0; legalized = false; eco_count = 0;
      congest = None; refine = None; dirty = false; pinned = false;
      last_used = 0; dedup = [] }
  in
  let module C = Mcl_service.Cache in
  let c = C.create ~max_designs:2 () in
  ignore (C.put c (entry "a"));
  ignore (C.put c (entry "b"));
  (* a is older than b; a fresh put evicts the least-recently-used *)
  Alcotest.(check (list string)) "a evicted" [ "a" ] (C.put c (entry "x"));
  (* touching via find refreshes recency *)
  ignore (C.find c "b");
  Alcotest.(check (list string)) "x (now oldest) evicted" [ "x" ]
    (C.put c (entry "y"));
  (* dirty and pinned entries are never evicted, even over bound *)
  (match C.find c "b" with
   | Some e -> e.C.dirty <- true
   | None -> Alcotest.fail "b missing");
  C.pin c "y";
  (* the engine inserts entries dirty (not yet durable), so a fresh
     put cannot evict itself either *)
  let z = entry "z" in
  z.Mcl_service.Cache.dirty <- true;
  Alcotest.(check (list string)) "no clean unpinned victim" [] (C.put c z);
  Alcotest.(check int) "over bound until a durability point" 3
    (List.length (C.entries c));
  C.unpin c "y";
  (* mark_all_clean is the durability point: the bound is re-enforced *)
  let evicted = C.mark_all_clean c in
  Alcotest.(check int) "bound restored" 2 (List.length (C.entries c));
  Alcotest.(check int) "one eviction" 1 (List.length evicted);
  Alcotest.(check int) "evictions counted" 3 (C.evictions c)

let () =
  Alcotest.run "service"
    [ ("json", [ Alcotest.test_case "roundtrip + malformed" `Quick test_json_roundtrip ]);
      ("protocol",
       [ Alcotest.test_case "load-legalize-eco-query" `Quick test_round_trip;
         Alcotest.test_case "error shapes" `Quick test_errors;
         Alcotest.test_case "infeasible eco + rollback" `Quick
           test_infeasible_eco_and_rollback ]);
      ("batching",
       [ Alcotest.test_case "eco coalescing" `Quick test_eco_coalescing;
         Alcotest.test_case "coalesced failure retries individually" `Quick
           test_coalesced_failure_retries_individually;
         Alcotest.test_case "parallel designs" `Quick test_parallel_designs;
         Alcotest.test_case "plan shape" `Quick test_batch_plan ]);
      ("stats",
       [ Alcotest.test_case "telemetry per-op listing deterministic" `Quick
           test_telemetry_stats_order_independent;
         Alcotest.test_case "cache entries sorted by key" `Quick
           test_cache_entries_sorted ]);
      ("histogram",
       [ Alcotest.test_case "log-bucket quantiles" `Quick
           test_histogram_quantiles;
         Alcotest.test_case "merge + json + clamping" `Quick
           test_histogram_merge_json ]);
      ("cache-lru",
       [ Alcotest.test_case "LRU policy, dirty/pinned protection" `Quick
           test_cache_lru_policy ]) ]
