(** Synthetic benchmark construction.

    [generate spec] builds a design whose global placement exhibits the
    features the paper's legalizer must cope with: overlapping cells in
    density hot-spots, mixed cell heights, fence regions (with some
    fenced cells starting outside their fence and vice versa), a P/G
    rail grid, IO pins and edge-spacing rules. Deterministic in
    [spec.seed]. *)

val generate : Spec.t -> Mcl_netlist.Design.t
