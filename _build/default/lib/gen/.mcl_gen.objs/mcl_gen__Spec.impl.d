lib/gen/spec.ml:
