lib/gen/spec.mli:
