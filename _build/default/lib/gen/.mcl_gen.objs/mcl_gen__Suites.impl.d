lib/gen/suites.ml: Float List Spec
