lib/gen/generator.mli: Mcl_netlist Spec
