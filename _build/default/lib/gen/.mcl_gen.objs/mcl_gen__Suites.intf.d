lib/gen/suites.mli: Spec
