lib/gen/generator.ml: Array Cell Cell_type Design Fence Float Floorplan Hashtbl Layer List Mcl_geom Mcl_netlist Net Printf Spec
