(** Min-cost perfect bipartite matching, solved as a min-cost flow
    (paper Sec. 3.2 uses this for the maximum-displacement
    optimization).

    Both sides have [n] vertices; only the supplied candidate edges may
    be used. The caller must ensure a perfect matching exists among the
    candidates (the legalizer guarantees this by always including each
    cell's identity edge to its own position). *)

type edge = { left : int; right : int; edge_cost : int }

(** [solve ~n ~edges] returns [mate] where [mate.(l)] is the right
    vertex matched to left vertex [l], or [Error _] if no perfect
    matching exists within the candidate edges. *)
val solve : n:int -> edges:edge list -> (int array, string) Result.t

(** Total cost of an assignment under the given edges; [None] if the
    assignment uses a non-edge. For tests. *)
val assignment_cost : n:int -> edges:edge list -> int array -> int option
