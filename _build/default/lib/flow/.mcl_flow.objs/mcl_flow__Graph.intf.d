lib/flow/graph.mli:
