lib/flow/network_simplex.mli: Graph Result
