lib/flow/matching.mli: Result
