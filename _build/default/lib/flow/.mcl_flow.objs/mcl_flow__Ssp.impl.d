lib/flow/ssp.ml: Array Graph
