lib/flow/network_simplex.ml: Array Graph List Printf
