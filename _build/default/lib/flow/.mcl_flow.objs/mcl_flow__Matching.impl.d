lib/flow/matching.ml: Array Graph Hashtbl List Mcf
