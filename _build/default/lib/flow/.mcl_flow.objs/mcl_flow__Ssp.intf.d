lib/flow/ssp.mli: Graph
