lib/flow/mcf.ml: Network_simplex Ssp
