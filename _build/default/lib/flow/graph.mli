(** Mutable builder for min-cost-flow problems.

    Nodes carry integer supplies (positive = source, negative = sink;
    the paper's formulations are circulations with all-zero supplies).
    Arcs carry a capacity in [0, cap] and a per-unit cost; both may be
    large (costs up to ~1e9, capacities up to ~2^21 are safe against
    overflow in the solvers). *)

type t

type arc = int  (** dense arc identifier, in insertion order *)

val create : unit -> t

(** [add_node t ~supply] returns the new node id (dense, from 0). *)
val add_node : t -> supply:int -> int

(** [add_arc t ~src ~dst ~cap ~cost] returns the new arc id. Raises
    [Invalid_argument] on negative capacity or unknown endpoints. *)
val add_arc : t -> src:int -> dst:int -> cap:int -> cost:int -> arc

val num_nodes : t -> int
val num_arcs : t -> int
val supply : t -> int -> int
val src : t -> arc -> int
val dst : t -> arc -> int
val cap : t -> arc -> int
val cost : t -> arc -> int

(** Finalized copies of the arc/node attributes (length = counts). *)
val arcs_arrays : t -> int array * int array * int array * int array
(** [(src, dst, cap, cost)] *)

val supplies_array : t -> int array
