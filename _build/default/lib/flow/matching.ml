type edge = { left : int; right : int; edge_cost : int }

let solve ~n ~edges =
  if n = 0 then Ok [||]
  else begin
    let g = Graph.create () in
    let source = Graph.add_node g ~supply:n in
    let sink = Graph.add_node g ~supply:(-n) in
    let lefts = Array.init n (fun _ -> Graph.add_node g ~supply:0) in
    let rights = Array.init n (fun _ -> Graph.add_node g ~supply:0) in
    Array.iter (fun l -> ignore (Graph.add_arc g ~src:source ~dst:l ~cap:1 ~cost:0)) lefts;
    Array.iter (fun r -> ignore (Graph.add_arc g ~src:r ~dst:sink ~cap:1 ~cost:0)) rights;
    let edge_arcs =
      List.map
        (fun e ->
           if e.left < 0 || e.left >= n || e.right < 0 || e.right >= n then
             invalid_arg "Matching.solve: edge endpoint out of range";
           (e, Graph.add_arc g ~src:lefts.(e.left) ~dst:rights.(e.right) ~cap:1
              ~cost:e.edge_cost))
        edges
    in
    let r = Mcf.solve g in
    match r.Mcf.status with
    | `Infeasible -> Error "no perfect matching within candidate edges"
    | `Optimal ->
      let mate = Array.make n (-1) in
      List.iter
        (fun (e, a) -> if r.Mcf.flow.(a) > 0 then mate.(e.left) <- e.right)
        edge_arcs;
      if Array.exists (fun x -> x < 0) mate then
        Error "incomplete matching (internal error)"
      else Ok mate
  end

let assignment_cost ~n ~edges mate =
  let tbl = Hashtbl.create (2 * n) in
  List.iter
    (fun e ->
       let key = (e.left, e.right) in
       match Hashtbl.find_opt tbl key with
       | Some c when c <= e.edge_cost -> ()
       | _ -> Hashtbl.replace tbl key e.edge_cost)
    edges;
  let total = ref 0 in
  let ok = ref true in
  Array.iteri
    (fun l r ->
       match Hashtbl.find_opt tbl (l, r) with
       | Some c -> total := !total + c
       | None -> ok := false)
    mate;
  if !ok then Some !total else None
