(** Facade over the two min-cost-flow solvers. *)

type solver =
  | Network_simplex_block   (** network simplex, block-search pivots (default) *)
  | Network_simplex_first   (** the paper's first-eligible pivot rule *)
  | Ssp                     (** successive shortest paths *)

type result = {
  status : [ `Optimal | `Infeasible ];
  flow : int array;
  potential : int array option;  (** [None] for the SSP solver *)
  total_cost : int;
}

val solve : ?solver:solver -> Graph.t -> result
