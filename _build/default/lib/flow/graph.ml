type t = {
  mutable n : int;
  mutable supplies : int array;
  mutable m : int;
  mutable a_src : int array;
  mutable a_dst : int array;
  mutable a_cap : int array;
  mutable a_cost : int array;
}

type arc = int

let create () =
  { n = 0; supplies = Array.make 8 0; m = 0;
    a_src = Array.make 16 0; a_dst = Array.make 16 0;
    a_cap = Array.make 16 0; a_cost = Array.make 16 0 }

let grow arr len =
  let bigger = Array.make (max 16 (2 * Array.length arr)) 0 in
  Array.blit arr 0 bigger 0 len;
  bigger

let add_node t ~supply =
  if t.n = Array.length t.supplies then t.supplies <- grow t.supplies t.n;
  t.supplies.(t.n) <- supply;
  t.n <- t.n + 1;
  t.n - 1

let add_arc t ~src ~dst ~cap ~cost =
  if cap < 0 then invalid_arg "Graph.add_arc: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Graph.add_arc: unknown endpoint";
  if t.m = Array.length t.a_src then begin
    t.a_src <- grow t.a_src t.m;
    t.a_dst <- grow t.a_dst t.m;
    t.a_cap <- grow t.a_cap t.m;
    t.a_cost <- grow t.a_cost t.m
  end;
  t.a_src.(t.m) <- src;
  t.a_dst.(t.m) <- dst;
  t.a_cap.(t.m) <- cap;
  t.a_cost.(t.m) <- cost;
  t.m <- t.m + 1;
  t.m - 1

let num_nodes t = t.n
let num_arcs t = t.m
let supply t i = t.supplies.(i)
let src t a = t.a_src.(a)
let dst t a = t.a_dst.(a)
let cap t a = t.a_cap.(a)
let cost t a = t.a_cost.(a)

let arcs_arrays t =
  (Array.sub t.a_src 0 t.m, Array.sub t.a_dst 0 t.m,
   Array.sub t.a_cap 0 t.m, Array.sub t.a_cost 0 t.m)

let supplies_array t = Array.sub t.supplies 0 t.n
