(** Closed-open integer intervals [lo, hi). Used for site spans, rail
    stripes and pin extents throughout the legalizer. *)

type t = { lo : int; hi : int }

(** [make lo hi] builds the interval [lo, hi). Raises [Invalid_argument]
    if [hi < lo]; [lo = hi] denotes the empty interval at [lo]. *)
val make : int -> int -> t

val empty : t
val is_empty : t -> bool
val length : t -> int
val contains : t -> int -> bool

(** [overlaps a b] is true when the open overlap of [a] and [b] has
    positive length. *)
val overlaps : t -> t -> bool

(** [inter a b] is the (possibly empty) intersection. *)
val inter : t -> t -> t

(** [hull a b] is the smallest interval covering both arguments. *)
val hull : t -> t -> t

(** [shift a dx] translates the interval by [dx]. *)
val shift : t -> int -> t

(** [subtract a cuts] removes every interval of [cuts] from [a] and
    returns the remaining sub-intervals, sorted by [lo]. [cuts] need not
    be sorted or disjoint. *)
val subtract : t -> t list -> t list

(** [clamp a x] is the point of [a] closest to [x]. Raises
    [Invalid_argument] on an empty interval. *)
val clamp : t -> int -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
