lib/geom/prng.mli:
