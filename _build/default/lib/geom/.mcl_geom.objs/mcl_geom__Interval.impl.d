lib/geom/interval.ml: Format List
