lib/geom/prng.ml: Array Int64
