(** Deterministic splitmix64 pseudo-random generator.

    All randomness in the benchmark generator flows through explicit
    [Prng.t] states, so every experiment is reproducible from its seed
    and independent of [Stdlib.Random] global state. *)

type t

val create : int -> t

(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)
val int_in : t -> int -> int -> int

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

(** [gaussian t ~mu ~sigma] draws from a normal distribution
    (Box-Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float

val bool : t -> bool

(** [choose t arr] picks a uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** [shuffle t arr] shuffles [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives an independent generator; the parent advances. *)
val split : t -> t
