(** Axis-aligned integer rectangles, closed-open on both axes. *)

type t = { x : Interval.t; y : Interval.t }

val make : xl:int -> yl:int -> xh:int -> yh:int -> t
val of_intervals : Interval.t -> Interval.t -> t
val is_empty : t -> bool
val area : t -> int
val width : t -> int
val height : t -> int
val overlaps : t -> t -> bool
val inter : t -> t -> t
val contains_rect : t -> t -> bool
val contains_point : t -> int * int -> bool
val shift : t -> dx:int -> dy:int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
