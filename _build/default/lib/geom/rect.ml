type t = { x : Interval.t; y : Interval.t }

let make ~xl ~yl ~xh ~yh =
  { x = Interval.make xl xh; y = Interval.make yl yh }

let of_intervals x y = { x; y }
let is_empty t = Interval.is_empty t.x || Interval.is_empty t.y
let width t = Interval.length t.x
let height t = Interval.length t.y
let area t = width t * height t
let overlaps a b = Interval.overlaps a.x b.x && Interval.overlaps a.y b.y
let inter a b = { x = Interval.inter a.x b.x; y = Interval.inter a.y b.y }

let contains_rect outer inner =
  Interval.is_empty inner.x || Interval.is_empty inner.y
  || (inner.x.Interval.lo >= outer.x.Interval.lo
      && inner.x.Interval.hi <= outer.x.Interval.hi
      && inner.y.Interval.lo >= outer.y.Interval.lo
      && inner.y.Interval.hi <= outer.y.Interval.hi)

let contains_point t (px, py) = Interval.contains t.x px && Interval.contains t.y py
let shift t ~dx ~dy = { x = Interval.shift t.x dx; y = Interval.shift t.y dy }

let equal a b =
  (is_empty a && is_empty b) || (Interval.equal a.x b.x && Interval.equal a.y b.y)

let pp ppf t = Format.fprintf ppf "%ax%a" Interval.pp t.x Interval.pp t.y
