type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: state advances by the golden-gamma constant; output is a
   finalizing hash of the new state. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  next_nonneg t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (x /. 9007199254740992.0)

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw ()
    else
      let u2 = float t 1.0 in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (6.283185307179586 *. u2))
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = { state = next_int64 t }
