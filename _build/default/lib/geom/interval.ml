type t = { lo : int; hi : int }

let make lo hi =
  if hi < lo then invalid_arg "Interval.make: hi < lo";
  { lo; hi }

let empty = { lo = 0; hi = 0 }
let is_empty t = t.hi <= t.lo
let length t = if is_empty t then 0 else t.hi - t.lo
let contains t x = x >= t.lo && x < t.hi
let overlaps a b = min a.hi b.hi > max a.lo b.lo

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if hi < lo then empty else { lo; hi }

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else { lo = min a.lo b.lo; hi = max a.hi b.hi }

let shift a dx = { lo = a.lo + dx; hi = a.hi + dx }

let subtract a cuts =
  let cuts =
    List.filter (fun c -> overlaps a c) cuts
    |> List.sort (fun c d -> compare c.lo d.lo)
  in
  let rec go lo acc = function
    | [] -> if lo < a.hi then { lo; hi = a.hi } :: acc else acc
    | c :: rest ->
      let acc = if c.lo > lo then { lo; hi = c.lo } :: acc else acc in
      go (max lo c.hi) acc rest
  in
  List.rev (go a.lo [] cuts)

let clamp a x =
  if is_empty a then invalid_arg "Interval.clamp: empty interval";
  if x < a.lo then a.lo else if x > a.hi - 1 then a.hi - 1 else x

let equal a b = (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)
let pp ppf t = Format.fprintf ppf "[%d,%d)" t.lo t.hi
