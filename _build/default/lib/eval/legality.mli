(** Hard-constraint audit of a placement (paper Sec. 2): overlaps, die
    and fence containment, blockages, P/G parity for even-height cells,
    and fixed cells staying put. A legal result from any of our
    legalizers must produce an empty violation list; the test suite
    relies on this audit. *)

open Mcl_netlist

type violation =
  | Overlap of int * int           (** two cell ids with positive overlap *)
  | Out_of_die of int
  | On_blockage of int
  | Outside_region of int          (** cell not fully inside its region *)
  | Bad_parity of int              (** even-height cell on odd row *)
  | Fixed_moved of int

val pp_violation : Format.formatter -> violation -> unit

(** Full audit; returns all violations (overlaps reported once per
    offending pair). *)
val check : Design.t -> violation list

val is_legal : Design.t -> bool

(** [assert_legal ~what d] raises [Failure] with a descriptive message
    when the design is illegal; used as an internal sanity barrier. *)
val assert_legal : what:string -> Design.t -> unit
