lib/eval/metrics.mli: Cell Design Mcl_netlist
