lib/eval/svg_render.ml: Array Buffer Cell Cell_type Design Fence Floorplan List Mcl_geom Mcl_netlist Printf
