lib/eval/svg_render.mli: Design Mcl_netlist
