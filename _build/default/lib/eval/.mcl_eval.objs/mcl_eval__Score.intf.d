lib/eval/score.mli: Design Format Mcl_netlist
