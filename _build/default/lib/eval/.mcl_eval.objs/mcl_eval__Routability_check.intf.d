lib/eval/routability_check.mli: Cell Design Mcl_netlist
