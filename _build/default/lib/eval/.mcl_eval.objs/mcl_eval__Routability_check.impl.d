lib/eval/routability_check.ml: Array Cell Cell_type Design Floorplan Hashtbl Layer List Mcl_geom Mcl_netlist
