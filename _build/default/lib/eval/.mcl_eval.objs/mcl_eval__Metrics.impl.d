lib/eval/metrics.ml: Array Cell Design Floorplan List Mcl_netlist Net
