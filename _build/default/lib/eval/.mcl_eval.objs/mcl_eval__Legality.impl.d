lib/eval/legality.ml: Array Cell Design Floorplan Format Hashtbl List Mcl_geom Mcl_netlist Printf String
