lib/eval/legality.mli: Design Format Mcl_netlist
