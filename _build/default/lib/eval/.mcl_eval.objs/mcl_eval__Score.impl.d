lib/eval/score.ml: Design Format Mcl_netlist Metrics Routability_check
