module Interval = Mcl_geom.Interval
module Rect = Mcl_geom.Rect
open Mcl_netlist

type pin_violation = {
  cell : int;
  pin_name : string;
  kind : [ `Short | `Access ];
  against : [ `Hrail | `Vrail | `Io ];
}

type edge_violation = { left_cell : int; right_cell : int; need : int; got : int }

(* Relation between a pin layer and an obstacle layer. *)
let relation ~pin_layer ~obstacle_layer =
  if Layer.equal pin_layer obstacle_layer then Some `Short
  else
    match Layer.above pin_layer with
    | Some up when Layer.equal up obstacle_layer -> Some `Access
    | Some _ | None -> None

let cell_pin_violations design (c : Cell.t) ~x ~y =
  let fp = design.Design.floorplan in
  let ct = Design.cell_type design c in
  let ox = x * fp.Floorplan.site_width and oy = y * fp.Floorplan.row_height in
  let hstripes = Floorplan.hrail_stripes fp in
  let vstripes = Floorplan.vrail_stripes fp in
  let check_pin (p : Cell_type.pin) =
    let shape = Rect.shift p.Cell_type.shape ~dx:ox ~dy:oy in
    let acc = ref [] in
    let add kind against =
      acc := { cell = c.id; pin_name = p.Cell_type.pin_name; kind; against } :: !acc
    in
    (* horizontal stripes live on M2 and span the full die width *)
    (match relation ~pin_layer:p.Cell_type.layer ~obstacle_layer:Layer.M2 with
     | Some kind ->
       if List.exists (fun s -> Interval.overlaps s shape.Rect.y) hstripes then
         add kind `Hrail
     | None -> ());
    (* vertical stripes live on M3 and span the full die height *)
    (match relation ~pin_layer:p.Cell_type.layer ~obstacle_layer:Layer.M3 with
     | Some kind ->
       if List.exists (fun s -> Interval.overlaps s shape.Rect.x) vstripes then
         add kind `Vrail
     | None -> ());
    List.iter
      (fun (io : Floorplan.io_pin) ->
         match relation ~pin_layer:p.Cell_type.layer ~obstacle_layer:io.Floorplan.io_layer with
         | Some kind -> if Rect.overlaps shape io.Floorplan.io_rect then add kind `Io
         | None -> ())
      fp.Floorplan.io_pins;
    !acc
  in
  List.concat_map check_pin ct.Cell_type.pins

let pin_violations design =
  Array.to_list design.Design.cells
  |> List.concat_map (fun (c : Cell.t) ->
      if c.Cell.is_fixed then []
      else cell_pin_violations design c ~x:c.Cell.x ~y:c.Cell.y)

let edge_violations design =
  let fp = design.Design.floorplan in
  let per_row = Array.make fp.Floorplan.num_rows [] in
  Array.iter
    (fun (c : Cell.t) ->
       let r = Design.cell_rect design c in
       for y = max 0 r.Rect.y.Interval.lo
         to min (fp.Floorplan.num_rows - 1) (r.Rect.y.Interval.hi - 1) do
         per_row.(y) <- c :: per_row.(y)
       done)
    design.Design.cells;
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  Array.iter
    (fun cells ->
       let sorted =
         List.sort (fun (a : Cell.t) (b : Cell.t) -> compare (a.x, a.id) (b.x, b.id)) cells
       in
       let rec scan = function
         | a :: (b :: _ as rest) ->
           let need =
             Floorplan.spacing fp
               ~l:(Design.cell_type design a).Cell_type.edge_type
               ~r:(Design.cell_type design b).Cell_type.edge_type
           in
           let got = b.Cell.x - (a.Cell.x + Design.width design a) in
           if got < need && not (Hashtbl.mem seen (a.Cell.id, b.Cell.id)) then begin
             Hashtbl.add seen (a.Cell.id, b.Cell.id) ();
             out := { left_cell = a.Cell.id; right_cell = b.Cell.id; need; got } :: !out
           end;
           scan rest
         | [ _ ] | [] -> ()
       in
       scan sorted)
    per_row;
  List.rev !out

let counts design =
  (List.length (pin_violations design), List.length (edge_violations design))
