(** Routability soft-constraint checks (paper Sec. 2 and Fig. 1).

    A signal pin on metal layer [k] is {e short} when it overlaps a P/G
    stripe or IO pin on layer [k], and {e inaccessible} when it
    overlaps one on layer [k+1]. Edge-spacing violations are pairs of
    horizontally adjacent cells closer than the rule distance for
    their edge types. *)

open Mcl_netlist

type pin_violation = {
  cell : int;
  pin_name : string;
  kind : [ `Short | `Access ];
  against : [ `Hrail | `Vrail | `Io ];
}

type edge_violation = { left_cell : int; right_cell : int; need : int; got : int }

(** Pin short/access violations of one cell placed at [(x, y)] in
    site/row coordinates. *)
val cell_pin_violations : Design.t -> Cell.t -> x:int -> y:int -> pin_violation list

(** All pin violations of the current placement. *)
val pin_violations : Design.t -> pin_violation list

(** All edge-spacing violations of the current placement (per adjacent
    pair in a row, deduplicated across rows). *)
val edge_violations : Design.t -> edge_violation list

(** [counts d] is [(num_pin, num_edge)], the paper's [N_p] and [N_e]. *)
val counts : Design.t -> int * int
