(** SVG rendering of placements, in the style of the paper's Fig. 6:
    cells colored by height, fences and fixed macros shaded, and
    optional red displacement lines from each cell to its GP position.

    Intended for debugging and for reproducing the Fig. 6 panels:
    render once after MGL and once after the post-processing stages to
    see the maximum-displacement optimization at work. *)

open Mcl_netlist

(** [render ?displacement_lines ?highlight_type design] builds a
    standalone SVG document. [displacement_lines] (default true) draws
    cell-to-GP segments for every cell displaced by at least one row
    height; [highlight_type] fills cells of that type in red like the
    paper's figure. *)
val render : ?displacement_lines:bool -> ?highlight_type:int -> Design.t -> string

val write_file :
  ?displacement_lines:bool -> ?highlight_type:int -> string -> Design.t -> unit
