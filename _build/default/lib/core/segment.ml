module Interval = Mcl_geom.Interval
module Rect = Mcl_geom.Rect
open Mcl_netlist

type t = {
  respect_fences : bool;
  num_regions : int;
  (* spans.(region).(row) : sorted disjoint intervals *)
  span_table : Interval.t list array array;
}

let shrink gap (s : Interval.t) =
  if Interval.length s <= 2 * gap then None
  else Some (Interval.make (s.Interval.lo + gap) (s.Interval.hi - gap))

let build ?(boundary_gap = 0) ~respect_fences design =
  let fp = design.Design.floorplan in
  let rows = fp.Floorplan.num_rows in
  let die_span = Interval.make 0 fp.Floorplan.num_sites in
  let blockage_cuts row =
    List.filter_map
      (fun (b : Rect.t) ->
         if Interval.contains b.Rect.y row then Some b.Rect.x else None)
      fp.Floorplan.blockages
  in
  let num_regions =
    if respect_fences then 1 + Array.length design.Design.fences else 1
  in
  let span_table =
    Array.init num_regions (fun region ->
        Array.init rows (fun row ->
            let base =
              if not respect_fences then [ die_span ]
              else if region = 0 then
                (* default region: die minus every fence *)
                let fence_cuts =
                  Array.to_list design.Design.fences
                  |> List.concat_map (fun f -> Fence.row_intervals f ~row)
                in
                Interval.subtract die_span fence_cuts
              else Fence.row_intervals design.Design.fences.(region - 1) ~row
            in
            List.concat_map (fun s -> Interval.subtract s (blockage_cuts row)) base
            |> List.filter_map (shrink boundary_gap)
            |> List.sort (fun a b -> compare a.Interval.lo b.Interval.lo)))
  in
  { respect_fences; num_regions; span_table }

let num_regions t = t.num_regions
let region_of t (c : Cell.t) = if t.respect_fences then c.region else 0

let spans t ~row ~region =
  if row < 0 || row >= Array.length t.span_table.(0) then []
  else t.span_table.(region).(row)

let span_at t ~row ~region ~x =
  List.find_opt (fun s -> Interval.contains s x) (spans t ~row ~region)

let region_area t ~region =
  Array.fold_left
    (fun acc spans_of_row ->
       acc + List.fold_left (fun a s -> a + Interval.length s) 0 spans_of_row)
    0 t.span_table.(region)
