(** Incremental re-legalization (ECO flow).

    After an engineering change moves, resizes or adds a handful of
    cells, re-running the whole pipeline is wasteful: [relegalize]
    plucks only the given cells out of the placement and re-inserts
    them with the same GP-referenced window machinery as MGL, leaving
    every other cell where it is (cells inside the insertion windows
    may still shift slightly — that is MGL's job).

    Cells are re-inserted at minimum displacement from their GP
    anchors; [targets] rebinds the anchors of moved cells first, so an
    ECO that relocates a cell passes [(id, (new_x, new_y))]. *)

open Mcl_netlist

type stats = {
  relegalized : int;
  window_growths : int;
  fallbacks : int;
}

(** [relegalize ?targets config design ~cells] re-inserts [cells]
    (ids) plus every cell named in [targets]. The rest of the placement
    must be legal. Raises [Failure] if a cell cannot be placed
    anywhere. *)
val relegalize :
  ?targets:(int * (int * int)) list -> Config.t -> Design.t ->
  cells:int list -> stats
