lib/core/baseline_greedy.ml: Array Cell Config Design Floorplan List Mcl_geom Mcl_netlist Placement Printf Segment
