lib/core/mgl.mli: Cell Config Design Insertion Mcl_geom Mcl_netlist
