lib/core/curve.mli:
