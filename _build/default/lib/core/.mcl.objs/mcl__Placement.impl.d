lib/core/placement.ml: Array Cell Design Floorplan Mcl_geom Mcl_netlist
