lib/core/insertion.ml: Array Cell Cell_type Config Curve Design Float Floorplan Hashtbl List Mcl_geom Mcl_netlist Placement Routability Segment
