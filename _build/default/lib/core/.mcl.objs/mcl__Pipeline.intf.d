lib/core/pipeline.mli: Config Design Format Matching_opt Mcl_netlist Row_order_opt Scheduler
