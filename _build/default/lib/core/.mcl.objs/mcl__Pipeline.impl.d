lib/core/pipeline.ml: Config Format Matching_opt Printf Row_order_opt Scheduler Unix
