lib/core/eco.mli: Config Design Mcl_netlist
