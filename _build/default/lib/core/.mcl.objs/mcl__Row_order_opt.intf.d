lib/core/row_order_opt.mli: Config Design Mcl_netlist
