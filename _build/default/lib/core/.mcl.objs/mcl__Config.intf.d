lib/core/config.mli: Mcl_flow
