lib/core/routability.ml: Array Cell_type Design Floorplan Layer List Mcl_geom Mcl_netlist
