lib/core/row_order_opt.ml: Array Cell Cell_type Config Design Floorplan Hashtbl List Mcl_eval Mcl_flow Mcl_geom Mcl_netlist Mgl Placement Routability Segment
