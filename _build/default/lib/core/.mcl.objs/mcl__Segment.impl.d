lib/core/segment.ml: Array Cell Design Fence Floorplan List Mcl_geom Mcl_netlist
