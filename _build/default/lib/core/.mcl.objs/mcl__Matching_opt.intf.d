lib/core/matching_opt.mli: Config Design Mcl_netlist
