lib/core/eco.ml: Array Cell Config Design Hashtbl Insertion List Mcl_netlist Mgl Placement Routability Segment
