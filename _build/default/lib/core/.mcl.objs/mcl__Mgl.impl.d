lib/core/mgl.ml: Array Cell Config Design Float Floorplan Insertion List Mcl_geom Mcl_netlist Placement Printf Routability Segment
