lib/core/curve.ml: Array List
