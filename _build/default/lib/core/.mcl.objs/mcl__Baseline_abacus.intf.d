lib/core/baseline_abacus.mli: Config Design Mcl_netlist
