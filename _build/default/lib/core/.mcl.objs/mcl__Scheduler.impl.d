lib/core/scheduler.ml: Array Cell Config Design Domain Floorplan Insertion List Mcl_geom Mcl_netlist Mgl Placement Printf Queue Routability Segment
