lib/core/matching_opt.ml: Array Cell Config Design Float Floorplan Hashtbl List Mcl_eval Mcl_flow Mcl_netlist
