lib/core/routability.mli: Design Mcl_netlist
