lib/core/placement.mli: Design Mcl_geom Mcl_netlist
