lib/core/insertion.mli: Config Design Mcl_geom Mcl_netlist Placement Routability Segment
