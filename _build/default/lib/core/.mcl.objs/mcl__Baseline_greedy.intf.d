lib/core/baseline_greedy.mli: Config Design Mcl_netlist
