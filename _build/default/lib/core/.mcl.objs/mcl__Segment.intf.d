lib/core/segment.mli: Cell Design Mcl_geom Mcl_netlist
