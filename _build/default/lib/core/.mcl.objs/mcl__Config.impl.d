lib/core/config.ml: Mcl_flow
