lib/core/baseline_abacus.ml: Array Cell Config Design Floorplan List Mcl_geom Mcl_netlist Option Printf Segment
