lib/core/scheduler.mli: Config Design Mcl_netlist
