(** Ordered, Abacus-style legalizer: our reimplementation of the
    Wang et al. ASPDAC'17 comparator [7] (Table 2; see DESIGN.md §4).

    Cells are legalized left-to-right in GP x-order, honoring that
    order per row (the class-(1) approach of the paper's related-work
    taxonomy). Single-row cells use Abacus row clustering with a
    linear displacement cost (cluster position = weighted median of
    member targets); multi-row cells are appended greedily across
    their row range and become rigid walls — a documented
    simplification of [7]'s multi-row cluster merging. *)

open Mcl_netlist

type stats = { legalized : int }

(** Raises [Failure] when some cell cannot be placed. *)
val run : Config.t -> Design.t -> stats
