(** The full three-stage legalization flow of the paper (Fig. 2):
    MGL, then the matching-based maximum-displacement optimization,
    then the fixed-row & fixed-order MCF refinement. *)

open Mcl_netlist

type report = {
  mgl_stats : Scheduler.stats;
  matching_stats : Matching_opt.stats option;
  row_order_stats : Row_order_opt.stats option;
  mgl_seconds : float;
  matching_seconds : float;
  row_order_seconds : float;
}

(** [run config design] legalizes [design] in place and returns stage
    statistics. Stages 2/3 run only when enabled in [config]. The
    result always passes {!Mcl_eval.Legality.check}. *)
val run : Config.t -> Design.t -> report

val total_seconds : report -> float
val pp_report : Format.formatter -> report -> unit
