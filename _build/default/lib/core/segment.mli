(** Static row segments: for every (row, region) pair, the maximal
    x-intervals a cell of that region may occupy. Region 0 is the
    default fence (outside all fences); region [i >= 1] is fence [i].
    Blockages are subtracted everywhere. Cells are not part of this
    structure (see {!Placement}). *)

open Mcl_netlist

type t

(** [build ~respect_fences design] precomputes all segments. With
    [respect_fences = false] every row is a single region-0 segment
    spanning the die (minus blockages) and fence queries alias to
    region 0. [boundary_gap] (default 0) shrinks every span by that
    many sites at each end, so cells on both sides of a fence or
    blockage boundary keep at least twice the gap between them — the
    pipeline uses half the largest edge-spacing rule. *)
val build : ?boundary_gap:int -> respect_fences:bool -> Design.t -> t

val num_regions : t -> int

(** Effective region key of a cell (0 when fences are ignored). *)
val region_of : t -> Cell.t -> int

(** Sorted disjoint free spans of [row] for [region]. *)
val spans : t -> row:int -> region:int -> Mcl_geom.Interval.t list

(** The span of (row, region) containing site [x], if any. *)
val span_at : t -> row:int -> region:int -> x:int -> Mcl_geom.Interval.t option

(** Total placeable sites of a region. *)
val region_area : t -> region:int -> int
