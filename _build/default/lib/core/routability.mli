(** Routability-aware placement queries used by MGL and the fixed-row
    refinement (paper Sec. 3.4).

    Violations against the *horizontal* M2 stripes depend only on the
    row a cell type sits in, so they are precomputed per (type, row
    residue); violations against the *vertical* M3 stripes depend only
    on the x position modulo the stripe pitch, precomputed likewise.
    IO-pin conflicts are positional and checked directly. *)

open Mcl_netlist

type t

val create : Design.t -> t

(** No pin of the type shorts or loses access to a horizontal stripe
    when the cell's bottom row is [y]. *)
val row_ok : t -> type_id:int -> y:int -> bool

(** No pin conflicts with a vertical stripe when the cell's left edge
    is at site [x]. *)
val x_ok : t -> type_id:int -> x:int -> bool

(** Nearest [x] in [lo, hi] (inclusive) to [x] with [x_ok]; [None] if
    the whole range conflicts. *)
val nearest_ok_x : t -> type_id:int -> x:int -> lo:int -> hi:int -> int option

(** Number of pin short/access conflicts against IO pins at
    position [(x, y)]. *)
val io_conflicts : t -> type_id:int -> x:int -> y:int -> int

(** Maximal sub-interval of [span] around [x] (a site for the cell's
    left edge; the cell is [width] sites wide) where the cell is free
    of vertical-rail and IO conflicts. Reach is capped at [max_reach]
    sites each way. Falls back to the single point [x] when [x] itself
    conflicts (it then cannot get worse by not moving). *)
val feasible_x_range :
  t -> type_id:int -> x:int -> y:int -> span_lo:int -> span_hi:int ->
  max_reach:int -> int * int
