type piece =
  | Target of { weight : float; gp : int }
  | Left of { weight : float; cur : int; gp : int; dist : int }
  | Right of { weight : float; cur : int; gp : int; dist : int }

type t = {
  mutable pieces : piece list;
  mutable const : float;
  (* slope-change events (x, delta); the slope left of every event is
     [base_slope] *)
  mutable events : (int * float) list;
  mutable base_slope : float;
}

let create () = { pieces = []; const = 0.0; events = []; base_slope = 0.0 }

let add_target t ~weight ~gp =
  t.pieces <- Target { weight; gp } :: t.pieces;
  t.base_slope <- t.base_slope -. weight;
  t.events <- (gp, 2.0 *. weight) :: t.events

(* f(x) = w * |min(cur, x - dist) - gp|.
   Kinks: at [gp + dist] the moving part crosses gp (if it does so
   before saturating) and at [cur + dist] the shift saturates. *)
let add_left t ~weight ~cur ~gp ~dist =
  t.pieces <- Left { weight; cur; gp; dist } :: t.pieces;
  let a = gp + dist and b = cur + dist in
  t.base_slope <- t.base_slope -. weight;
  if a < b then
    t.events <- (a, 2.0 *. weight) :: (b, -.weight) :: t.events
  else t.events <- (b, weight) :: t.events

(* f(x) = w * |max(cur, x + dist) - gp|. *)
let add_right t ~weight ~cur ~gp ~dist =
  t.pieces <- Right { weight; cur; gp; dist } :: t.pieces;
  let a = gp - dist and b = cur - dist in
  if a > b then
    t.events <- (b, -.weight) :: (a, 2.0 *. weight) :: t.events
  else t.events <- (b, weight) :: t.events

let add_const t c = t.const <- t.const +. c

let eval t x =
  let piece_value = function
    | Target { weight; gp } -> weight *. float_of_int (abs (x - gp))
    | Left { weight; cur; gp; dist } ->
      weight *. float_of_int (abs (min cur (x - dist) - gp))
    | Right { weight; cur; gp; dist } ->
      weight *. float_of_int (abs (max cur (x + dist) - gp))
  in
  List.fold_left (fun acc p -> acc +. piece_value p) t.const t.pieces

let sorted_events t =
  let arr = Array.of_list t.events in
  Array.sort (fun (x1, _) (x2, _) -> compare x1 x2) arr;
  arr

let minimize t ~lo ~hi =
  if hi < lo then invalid_arg "Curve.minimize: hi < lo";
  let events = sorted_events t in
  let n = Array.length events in
  (* slope just right of lo, folding in all events at or before lo *)
  let slope = ref t.base_slope in
  let i = ref 0 in
  while !i < n && fst events.(!i) <= lo do
    slope := !slope +. snd events.(!i);
    incr i
  done;
  let best_x = ref lo and best_v = ref (eval t lo) in
  let x = ref lo and v = ref !best_v in
  while !i < n && fst events.(!i) < hi do
    let bx, dv = events.(!i) in
    (* advance to the breakpoint *)
    v := !v +. (!slope *. float_of_int (bx - !x));
    x := bx;
    slope := !slope +. dv;
    if !v < !best_v then begin
      best_v := !v;
      best_x := bx
    end;
    incr i
  done;
  if hi > !x then begin
    let v_hi = !v +. (!slope *. float_of_int (hi - !x)) in
    if v_hi < !best_v then begin
      best_v := v_hi;
      best_x := hi
    end
  end;
  (!best_x, !best_v)

let breakpoints t ~lo ~hi =
  sorted_events t |> Array.to_list
  |> List.filter_map (fun (x, _) -> if x > lo && x < hi then Some x else None)
  |> List.sort_uniq compare
