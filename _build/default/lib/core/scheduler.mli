(** Deterministic multi-threaded MGL (paper Sec. 3.5).

    The scheduler maintains the paper's two lists: [L_p], windows under
    processing (pairwise non-overlapping), and [L_w], cells waiting
    (including those whose window grew after a failed insertion). Each
    round, a maximal prefix-greedy batch of non-overlapping windows is
    selected in cell order; their best insertion points are computed
    read-only (optionally on multiple domains) and then applied in
    order. Because the windows are disjoint, the computed candidates
    touch disjoint cell sets and the result is identical to processing
    the batch sequentially — determinism follows by construction, as
    the paper argues. *)

open Mcl_netlist

type stats = {
  legalized : int;
  rounds : int;
  window_growths : int;
  fallbacks : int;
}

(** [run config design] legalizes like {!Mgl.run} but batch-scheduled;
    [config.threads] > 1 computes each batch on that many domains. *)
val run : ?disp_from:[ `Gp | `Current ] -> Config.t -> Design.t -> stats
