(** Tetris-style greedy legalizer: our stand-in for the ICCAD 2017
    contest champion binary (Table 1 comparator; see DESIGN.md §4).

    Cells are processed in GP x-order; each is placed at the nearest
    feasible gap (parity- and fence-correct, overlap-free) without
    moving already-placed cells and {e without} considering edge
    spacing or pin access — exactly the class of fast legalizer whose
    routability violation counts the paper's Table 1 reports. *)

open Mcl_netlist

type stats = { legalized : int }

(** Raises [Failure] when some cell cannot be placed anywhere. *)
val run : Config.t -> Design.t -> stats
