module Interval = Mcl_geom.Interval
module Rect = Mcl_geom.Rect
open Mcl_netlist

type t = {
  design : Design.t;
  hrail_period : int;  (* rows; 0 = no horizontal stripes *)
  vrail_pitch : int;   (* sites; 0 = no vertical stripes *)
  row_ok_tbl : bool array array;  (* type -> y mod period *)
  x_ok_tbl : bool array array;    (* type -> x mod pitch *)
}

let relation ~pin_layer ~obstacle_layer =
  if Layer.equal pin_layer obstacle_layer then true
  else
    match Layer.above pin_layer with
    | Some up -> Layer.equal up obstacle_layer
    | None -> false

(* Does any pin of [ct] placed with bottom row residue [rho] hit a
   horizontal M2 stripe? Stripes sit at y = k * period * row_height,
   extending hrail_halfwidth each way. *)
let row_residue_conflict fp (ct : Cell_type.t) rho =
  let rh = fp.Floorplan.row_height in
  let period_dbu = fp.Floorplan.hrail_period * rh in
  let hw = fp.Floorplan.hrail_halfwidth in
  List.exists
    (fun (p : Cell_type.pin) ->
       relation ~pin_layer:p.Cell_type.layer ~obstacle_layer:Layer.M2
       &&
       let ylo = (rho * rh) + p.Cell_type.shape.Rect.y.Interval.lo in
       let yhi = (rho * rh) + p.Cell_type.shape.Rect.y.Interval.hi in
       (* candidate stripe indices around the pin span *)
       let k_lo = (ylo - hw) / period_dbu and k_hi = ((yhi + hw) / period_dbu) + 1 in
       let rec any k =
         k <= k_hi
         && ((let c = k * period_dbu in
              ylo < c + hw && yhi > c - hw)
             || any (k + 1))
       in
       any (max 0 k_lo))
    ct.Cell_type.pins

let x_residue_conflict fp (ct : Cell_type.t) rho =
  let sw = fp.Floorplan.site_width in
  let pitch_dbu = fp.Floorplan.vrail_pitch * sw in
  let vw = fp.Floorplan.vrail_width in
  let hw = vw / 2 in
  List.exists
    (fun (p : Cell_type.pin) ->
       relation ~pin_layer:p.Cell_type.layer ~obstacle_layer:Layer.M3
       &&
       let xlo = (rho * sw) + p.Cell_type.shape.Rect.x.Interval.lo in
       let xhi = (rho * sw) + p.Cell_type.shape.Rect.x.Interval.hi in
       let k_lo = (xlo - vw) / pitch_dbu and k_hi = ((xhi + vw) / pitch_dbu) + 1 in
       let rec any k =
         k <= k_hi
         && ((let c = k * pitch_dbu in
              xlo < c - hw + vw && xhi > c - hw)
             || any (k + 1))
       in
       any (max 0 k_lo))
    ct.Cell_type.pins

let create design =
  let fp = design.Design.floorplan in
  let types = design.Design.cell_types in
  let hrail_period = fp.Floorplan.hrail_period in
  let vrail_pitch = fp.Floorplan.vrail_pitch in
  let row_ok_tbl =
    Array.map
      (fun ct ->
         if hrail_period <= 0 then [||]
         else Array.init hrail_period (fun rho -> not (row_residue_conflict fp ct rho)))
      types
  in
  let x_ok_tbl =
    Array.map
      (fun ct ->
         if vrail_pitch <= 0 then [||]
         else Array.init vrail_pitch (fun rho -> not (x_residue_conflict fp ct rho)))
      types
  in
  { design; hrail_period; vrail_pitch; row_ok_tbl; x_ok_tbl }

let row_ok t ~type_id ~y =
  t.hrail_period <= 0
  || t.row_ok_tbl.(type_id).(((y mod t.hrail_period) + t.hrail_period) mod t.hrail_period)

let x_ok t ~type_id ~x =
  t.vrail_pitch <= 0
  || t.x_ok_tbl.(type_id).(((x mod t.vrail_pitch) + t.vrail_pitch) mod t.vrail_pitch)

let nearest_ok_x t ~type_id ~x ~lo ~hi =
  if x_ok t ~type_id ~x && x >= lo && x <= hi then Some x
  else begin
    (* residues repeat with the pitch: beyond one pitch nothing new *)
    let limit = min (max (x - lo) (hi - x)) (max 1 t.vrail_pitch) in
    let rec search d =
      if d > limit then None
      else if x - d >= lo && x_ok t ~type_id ~x:(x - d) then Some (x - d)
      else if x + d <= hi && x_ok t ~type_id ~x:(x + d) then Some (x + d)
      else search (d + 1)
    in
    search 1
  end

let io_conflicts t ~type_id ~x ~y =
  let fp = t.design.Design.floorplan in
  let ct = t.design.Design.cell_types.(type_id) in
  let ox = x * fp.Floorplan.site_width and oy = y * fp.Floorplan.row_height in
  List.fold_left
    (fun acc (p : Cell_type.pin) ->
       let shape = Rect.shift p.Cell_type.shape ~dx:ox ~dy:oy in
       List.fold_left
         (fun acc (io : Floorplan.io_pin) ->
            if relation ~pin_layer:p.Cell_type.layer
                 ~obstacle_layer:io.Floorplan.io_layer
               && Rect.overlaps shape io.Floorplan.io_rect
            then acc + 1
            else acc)
         acc fp.Floorplan.io_pins)
    0 ct.Cell_type.pins

let position_clean t ~type_id ~x ~y =
  x_ok t ~type_id ~x && io_conflicts t ~type_id ~x ~y = 0

let feasible_x_range t ~type_id ~x ~y ~span_lo ~span_hi ~max_reach =
  if not (position_clean t ~type_id ~x ~y) then (x, x)
  else begin
    let lo = ref x in
    while
      !lo > span_lo && x - !lo < max_reach
      && position_clean t ~type_id ~x:(!lo - 1) ~y
    do
      decr lo
    done;
    let hi = ref x in
    while
      !hi < span_hi && !hi - x < max_reach
      && position_clean t ~type_id ~x:(!hi + 1) ~y
    do
      incr hi
    done;
    (!lo, !hi)
  end
