lib/bookshelf/writer.mli: Mcl_netlist
