lib/bookshelf/parser.ml: Array Cell Cell_type Design Fence Floorplan Layer List Mcl_geom Mcl_netlist Net Printf String
