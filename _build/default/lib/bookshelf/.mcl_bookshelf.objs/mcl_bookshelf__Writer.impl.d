lib/bookshelf/writer.ml: Array Buffer Cell Cell_type Design Fence Floorplan Layer List Mcl_geom Mcl_netlist Net Printf
