lib/bookshelf/parser.mli: Mcl_netlist Result
