module Rect = Mcl_geom.Rect
module Interval = Mcl_geom.Interval
open Mcl_netlist

let rect_fields (r : Rect.t) =
  Printf.sprintf "%d %d %d %d" r.Rect.x.Interval.lo r.Rect.y.Interval.lo
    r.Rect.x.Interval.hi r.Rect.y.Interval.hi

let write design =
  let buf = Buffer.create 65536 in
  let fp = design.Design.floorplan in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "MCLBENCH 1 %s\n" design.Design.name;
  pf "floorplan %d %d %d %d %d %d %d %d\n" fp.Floorplan.num_sites
    fp.Floorplan.num_rows fp.Floorplan.site_width fp.Floorplan.row_height
    fp.Floorplan.hrail_period fp.Floorplan.hrail_halfwidth
    fp.Floorplan.vrail_pitch fp.Floorplan.vrail_width;
  let es = fp.Floorplan.edge_spacing in
  pf "edge_spacing %d\n" (Array.length es);
  Array.iter
    (fun row ->
       Array.iteri (fun i v -> pf "%s%d" (if i > 0 then " " else "") v) row;
       pf "\n")
    es;
  pf "io_pins %d\n" (List.length fp.Floorplan.io_pins);
  List.iter
    (fun (io : Floorplan.io_pin) ->
       pf "%s %s\n" (Layer.to_string io.Floorplan.io_layer)
         (rect_fields io.Floorplan.io_rect))
    fp.Floorplan.io_pins;
  pf "blockages %d\n" (List.length fp.Floorplan.blockages);
  List.iter (fun b -> pf "%s\n" (rect_fields b)) fp.Floorplan.blockages;
  pf "cell_types %d\n" (Array.length design.Design.cell_types);
  Array.iter
    (fun (ct : Cell_type.t) ->
       pf "%s %d %d %d %d\n" ct.Cell_type.name ct.Cell_type.width
         ct.Cell_type.height ct.Cell_type.edge_type
         (List.length ct.Cell_type.pins);
       List.iter
         (fun (p : Cell_type.pin) ->
            pf "pin %s %s %s\n" p.Cell_type.pin_name
              (Layer.to_string p.Cell_type.layer)
              (rect_fields p.Cell_type.shape))
         ct.Cell_type.pins)
    design.Design.cell_types;
  pf "fences %d\n" (Array.length design.Design.fences);
  Array.iter
    (fun (f : Fence.t) ->
       pf "%s %d\n" f.Fence.name (List.length f.Fence.rects);
       List.iter (fun r -> pf "%s\n" (rect_fields r)) f.Fence.rects)
    design.Design.fences;
  pf "cells %d\n" (Array.length design.Design.cells);
  Array.iter
    (fun (c : Cell.t) ->
       pf "%d %d %d %d %d %d %d\n" c.Cell.type_id c.Cell.region
         (if c.Cell.is_fixed then 1 else 0) c.Cell.gp_x c.Cell.gp_y c.Cell.x
         c.Cell.y)
    design.Design.cells;
  pf "nets %d\n" (Array.length design.Design.nets);
  Array.iter
    (fun (n : Net.t) ->
       pf "%d" (List.length n.Net.endpoints);
       List.iter
         (fun ep ->
            match ep with
            | Net.Cell_pin { cell; dx; dy } -> pf " c %d %d %d" cell dx dy
            | Net.Fixed_pin { px; py } -> pf " f %d %d" px py)
         n.Net.endpoints;
       pf "\n")
    design.Design.nets;
  Buffer.contents buf

let write_file path design =
  let oc = open_out path in
  output_string oc (write design);
  close_out oc
