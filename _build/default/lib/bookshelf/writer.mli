(** Plain-text serialization of designs (a bookshelf-style single-file
    format, documented in the README). [Parser.parse (write d)]
    round-trips every field, including current cell positions. *)

val write : Mcl_netlist.Design.t -> string

val write_file : string -> Mcl_netlist.Design.t -> unit
