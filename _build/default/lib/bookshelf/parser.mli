(** Parser for the {!Writer} format. *)

(** [parse text] rebuilds the design, or returns a descriptive error
    ["line N: ..."]. *)
val parse : string -> (Mcl_netlist.Design.t, string) Result.t

val parse_file : string -> (Mcl_netlist.Design.t, string) Result.t
