module Rect = Mcl_geom.Rect
open Mcl_netlist

exception Parse_error of int * string

type cursor = { lines : string array; mutable pos : int }

let fail cur msg = raise (Parse_error (cur.pos, msg))

let next cur =
  let rec go () =
    if cur.pos >= Array.length cur.lines then fail cur "unexpected end of file"
    else begin
      let line = String.trim cur.lines.(cur.pos) in
      cur.pos <- cur.pos + 1;
      if line = "" || String.length line > 0 && line.[0] = '#' then go ()
      else line
    end
  in
  go ()

let words line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let int_of cur s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail cur (Printf.sprintf "expected integer, got %S" s)

let rect_of cur = function
  | [ a; b; c; d ] ->
    Rect.make ~xl:(int_of cur a) ~yl:(int_of cur b) ~xh:(int_of cur c)
      ~yh:(int_of cur d)
  | l -> fail cur (Printf.sprintf "expected 4 rect fields, got %d" (List.length l))

let layer_of cur s =
  match Layer.of_string s with
  | Some l -> l
  | None -> fail cur (Printf.sprintf "unknown layer %S" s)

let parse text =
  let cur = { lines = Array.of_list (String.split_on_char '\n' text); pos = 0 } in
  try
    let name =
      match words (next cur) with
      | "MCLBENCH" :: "1" :: rest -> String.concat " " rest
      | _ -> fail cur "missing MCLBENCH 1 header"
    in
    let fp_line = words (next cur) in
    let num_sites, num_rows, site_width, row_height, hrail_period,
        hrail_halfwidth, vrail_pitch, vrail_width =
      match fp_line with
      | [ "floorplan"; a; b; c; d; e; f; g; h ] ->
        (int_of cur a, int_of cur b, int_of cur c, int_of cur d, int_of cur e,
         int_of cur f, int_of cur g, int_of cur h)
      | _ -> fail cur "bad floorplan line"
    in
    let expect_count keyword =
      match words (next cur) with
      | [ k; n ] when k = keyword -> int_of cur n
      | _ -> fail cur (Printf.sprintf "expected '%s <count>'" keyword)
    in
    let n_es = expect_count "edge_spacing" in
    let edge_spacing =
      Array.init n_es (fun _ ->
          let vals = words (next cur) in
          if List.length vals <> n_es then fail cur "bad edge_spacing row";
          Array.of_list (List.map (int_of cur) vals))
    in
    let n_io = expect_count "io_pins" in
    let io_pins =
      List.init n_io (fun _ ->
          match words (next cur) with
          | layer :: rect ->
            { Floorplan.io_layer = layer_of cur layer; io_rect = rect_of cur rect }
          | [] -> fail cur "bad io pin")
    in
    let n_blk = expect_count "blockages" in
    let blockages = List.init n_blk (fun _ -> rect_of cur (words (next cur))) in
    let n_ct = expect_count "cell_types" in
    let cell_types =
      Array.init n_ct (fun type_id ->
          match words (next cur) with
          | [ name; w; h; et; npins ] ->
            let pins =
              List.init (int_of cur npins) (fun _ ->
                  match words (next cur) with
                  | "pin" :: pname :: layer :: rect ->
                    { Cell_type.pin_name = pname;
                      layer = layer_of cur layer;
                      shape = rect_of cur rect }
                  | _ -> fail cur "bad pin line")
            in
            Cell_type.make ~type_id ~name ~width:(int_of cur w)
              ~height:(int_of cur h) ~edge_type:(int_of cur et) ~pins ()
          | _ -> fail cur "bad cell type line")
    in
    let n_f = expect_count "fences" in
    let fences =
      Array.init n_f (fun i ->
          match words (next cur) with
          | [ fname; nrects ] ->
            let rects =
              List.init (int_of cur nrects) (fun _ -> rect_of cur (words (next cur)))
            in
            Fence.make ~fence_id:(i + 1) ~name:fname ~rects
          | _ -> fail cur "bad fence line")
    in
    let n_c = expect_count "cells" in
    let cells =
      Array.init n_c (fun id ->
          match words (next cur) with
          | [ tid; region; fixed; gpx; gpy; x; y ] ->
            let c =
              Cell.make ~id ~type_id:(int_of cur tid) ~region:(int_of cur region)
                ~is_fixed:(int_of cur fixed = 1) ~gp_x:(int_of cur gpx)
                ~gp_y:(int_of cur gpy) ()
            in
            c.Cell.x <- int_of cur x;
            c.Cell.y <- int_of cur y;
            c
          | _ -> fail cur "bad cell line")
    in
    let n_n = expect_count "nets" in
    let nets =
      Array.init n_n (fun net_id ->
          let rec eps acc = function
            | [] -> List.rev acc
            | "c" :: cell :: dx :: dy :: rest ->
              eps
                (Net.Cell_pin
                   { cell = int_of cur cell; dx = int_of cur dx; dy = int_of cur dy }
                 :: acc)
                rest
            | "f" :: px :: py :: rest ->
              eps (Net.Fixed_pin { px = int_of cur px; py = int_of cur py } :: acc) rest
            | w :: _ -> fail cur (Printf.sprintf "bad net endpoint %S" w)
          in
          match words (next cur) with
          | count :: rest ->
            let endpoints = eps [] rest in
            if List.length endpoints <> int_of cur count then
              fail cur "net endpoint count mismatch";
            Net.make ~net_id ~endpoints
          | [] -> fail cur "bad net line")
    in
    let floorplan =
      Floorplan.make ~num_sites ~num_rows ~site_width ~row_height ~hrail_period
        ~hrail_halfwidth ~vrail_pitch ~vrail_width ~io_pins ~blockages
        ~edge_spacing ()
    in
    Ok (Design.make ~name ~floorplan ~cell_types ~cells ~nets ~fences ())
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Invalid_argument msg -> Error msg

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text
