(** Fence regions (paper Sec. 2): a named union of rectangles in
    site/row coordinates. Cells assigned to a fence must be placed
    inside its boundary; all other cells live in the default region
    (region id 0), the area outside every fence. *)

type t = {
  fence_id : int;  (** >= 1; region 0 is the implicit default region *)
  name : string;
  rects : Mcl_geom.Rect.t list;  (** x in sites, y in rows *)
}

val make : fence_id:int -> name:string -> rects:Mcl_geom.Rect.t list -> t

(** [covers t ~x ~y] tests whether site column [x] of row [y] lies in
    the fence. *)
val covers : t -> x:int -> y:int -> bool

(** [row_intervals t ~row] is the sites of [row] covered by the fence,
    as a sorted list of disjoint merged intervals. *)
val row_intervals : t -> row:int -> Mcl_geom.Interval.t list

val pp : Format.formatter -> t -> unit
