module Interval = Mcl_geom.Interval
module Rect = Mcl_geom.Rect

type t = { fence_id : int; name : string; rects : Rect.t list }

let make ~fence_id ~name ~rects =
  if fence_id < 1 then invalid_arg "Fence.make: fence_id must be >= 1";
  { fence_id; name; rects }

let covers t ~x ~y = List.exists (fun r -> Rect.contains_point r (x, y)) t.rects

let merge_intervals ivs =
  let sorted = List.sort (fun a b -> compare a.Interval.lo b.Interval.lo) ivs in
  let rec go acc = function
    | [] -> List.rev acc
    | iv :: rest ->
      (match acc with
       | prev :: tl when iv.Interval.lo <= prev.Interval.hi ->
         go (Interval.hull prev iv :: tl) rest
       | _ -> go (iv :: acc) rest)
  in
  go [] sorted

let row_intervals t ~row =
  List.filter_map
    (fun r ->
       if Interval.contains r.Rect.y row && not (Interval.is_empty r.Rect.x) then
         Some r.Rect.x
       else None)
    t.rects
  |> merge_intervals

let pp ppf t =
  Format.fprintf ppf "fence%d(%s,%d rects)" t.fence_id t.name
    (List.length t.rects)
