(** Metal layers used by the pin-access model. The P/G grid runs
    horizontally on M2 and vertically on M3; signal pins sit on M1/M2. *)

type t = M1 | M2 | M3

(** [above t] is the next upper routing layer, if any. A signal pin on
    layer [k] is inaccessible when covered on [above k] (paper Sec. 2). *)
val above : t -> t option

val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
