(** Cell instances. Positions are the lower-left corner: [x] in sites,
    [y] in rows. [gp_x]/[gp_y] hold the global-placement target the
    legalizer minimizes displacement from; [x]/[y] are the current
    (mutable) placement. *)

type t = {
  id : int;
  type_id : int;
  region : int;  (** 0 = default fence region, >= 1 = fence id *)
  is_fixed : bool;
  mutable gp_x : int;
  mutable gp_y : int;
  mutable x : int;
  mutable y : int;
}

val make :
  id:int -> type_id:int -> ?region:int -> ?is_fixed:bool ->
  gp_x:int -> gp_y:int -> unit -> t

(** [reset_to_gp c] moves the cell back to its GP position. *)
val reset_to_gp : t -> unit

val pp : Format.formatter -> t -> unit
