module Interval = Mcl_geom.Interval
module Rect = Mcl_geom.Rect

type io_pin = { io_layer : Layer.t; io_rect : Rect.t }

type t = {
  num_sites : int;
  num_rows : int;
  site_width : int;
  row_height : int;
  hrail_period : int;
  hrail_halfwidth : int;
  vrail_pitch : int;
  vrail_width : int;
  io_pins : io_pin list;
  blockages : Rect.t list;
  edge_spacing : int array array;
}

let make ~num_sites ~num_rows ?(site_width = 1) ?(row_height = 10)
    ?(hrail_period = 0) ?(hrail_halfwidth = 0) ?(vrail_pitch = 0)
    ?(vrail_width = 0) ?(io_pins = []) ?(blockages = [])
    ?(edge_spacing = [||]) () =
  if num_sites <= 0 || num_rows <= 0 then
    invalid_arg "Floorplan.make: non-positive die";
  if site_width <= 0 || row_height <= 0 then
    invalid_arg "Floorplan.make: non-positive pitch";
  { num_sites; num_rows; site_width; row_height; hrail_period;
    hrail_halfwidth; vrail_pitch; vrail_width; io_pins; blockages;
    edge_spacing }

let die t = Rect.make ~xl:0 ~yl:0 ~xh:t.num_sites ~yh:t.num_rows

let spacing t ~l ~r =
  let n = Array.length t.edge_spacing in
  if l < 0 || r < 0 || l >= n then 0
  else
    let row = t.edge_spacing.(l) in
    if r >= Array.length row then 0 else row.(r)

let hrail_stripes t =
  if t.hrail_period <= 0 then []
  else
    let rec go k acc =
      let row = k * t.hrail_period in
      if row > t.num_rows then List.rev acc
      else
        let y = row * t.row_height in
        go (k + 1) (Interval.make (y - t.hrail_halfwidth) (y + t.hrail_halfwidth) :: acc)
    in
    go 0 []

let vrail_stripes t =
  if t.vrail_pitch <= 0 then []
  else
    let rec go k acc =
      let site = k * t.vrail_pitch in
      if site > t.num_sites then List.rev acc
      else
        let x = site * t.site_width in
        let hw = t.vrail_width / 2 in
        go (k + 1) (Interval.make (x - hw) (x - hw + t.vrail_width) :: acc)
    in
    go 0 []
