type t = {
  id : int;
  type_id : int;
  region : int;
  is_fixed : bool;
  mutable gp_x : int;
  mutable gp_y : int;
  mutable x : int;
  mutable y : int;
}

let make ~id ~type_id ?(region = 0) ?(is_fixed = false) ~gp_x ~gp_y () =
  { id; type_id; region; is_fixed; gp_x; gp_y; x = gp_x; y = gp_y }

let reset_to_gp c =
  c.x <- c.gp_x;
  c.y <- c.gp_y

let pp ppf c =
  Format.fprintf ppf "c%d(t%d r%d @(%d,%d) gp(%d,%d)%s)" c.id c.type_id c.region
    c.x c.y c.gp_x c.gp_y
    (if c.is_fixed then " fixed" else "")
