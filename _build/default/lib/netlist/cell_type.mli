(** Standard-cell master definitions.

    Width is in sites, height in rows. Signal-pin shapes are rectangles
    in database units relative to the cell origin (lower-left corner);
    the edge type indexes the edge-spacing rule table. *)

type pin = {
  pin_name : string;
  layer : Layer.t;
  shape : Mcl_geom.Rect.t;  (** offset rect in dbu, relative to origin *)
}

type t = {
  type_id : int;
  name : string;
  width : int;      (** in sites *)
  height : int;     (** in rows *)
  edge_type : int;  (** index into the edge-spacing table *)
  pins : pin list;
}

val make :
  type_id:int -> name:string -> width:int -> height:int ->
  ?edge_type:int -> ?pins:pin list -> unit -> t

val pp : Format.formatter -> t -> unit
