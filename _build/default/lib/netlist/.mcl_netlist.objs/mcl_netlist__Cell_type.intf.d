lib/netlist/cell_type.mli: Format Layer Mcl_geom
