lib/netlist/cell_type.ml: Format Layer List Mcl_geom
