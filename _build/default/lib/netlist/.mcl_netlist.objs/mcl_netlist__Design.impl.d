lib/netlist/design.ml: Array Cell Cell_type Fence Floorplan Mcl_geom Net
