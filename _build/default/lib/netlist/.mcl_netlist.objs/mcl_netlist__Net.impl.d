lib/netlist/net.ml: Format
