lib/netlist/floorplan.ml: Array Layer List Mcl_geom
