lib/netlist/layer.mli: Format
