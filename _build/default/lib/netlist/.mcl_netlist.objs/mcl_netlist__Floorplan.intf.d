lib/netlist/floorplan.mli: Layer Mcl_geom
