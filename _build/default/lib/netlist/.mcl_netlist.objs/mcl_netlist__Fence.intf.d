lib/netlist/fence.mli: Format Mcl_geom
