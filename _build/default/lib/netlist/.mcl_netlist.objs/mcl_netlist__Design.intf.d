lib/netlist/design.mli: Cell Cell_type Fence Floorplan Mcl_geom Net
