lib/netlist/layer.ml: Format
