lib/netlist/fence.ml: Format List Mcl_geom
