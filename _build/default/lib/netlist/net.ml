type endpoint =
  | Cell_pin of { cell : int; dx : int; dy : int }
  | Fixed_pin of { px : int; py : int }

type t = { net_id : int; endpoints : endpoint list }

let make ~net_id ~endpoints = { net_id; endpoints }

let pp_endpoint ppf = function
  | Cell_pin { cell; dx; dy } -> Format.fprintf ppf "c%d+(%d,%d)" cell dx dy
  | Fixed_pin { px; py } -> Format.fprintf ppf "io(%d,%d)" px py

let pp ppf t =
  Format.fprintf ppf "n%d[%a]" t.net_id
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_endpoint)
    t.endpoints
