(** Chip floorplan: placement rows/sites, the P/G grid, IO pins,
    placement blockages and the edge-spacing rule table.

    Coordinates: x positions are site indices, y positions are row
    indices; [site_width] and [row_height] convert them to database
    units (dbu). Pin and rail geometry is expressed in dbu.

    P/G grid model (paper Sec. 2, Fig. 1):
    - horizontal power stripes on M2 along every [hrail_period]-th row
      boundary, extending [hrail_halfwidth] dbu to each side;
    - vertical power stripes on M3 every [vrail_pitch] sites, each
      [vrail_width] dbu wide, centred on the site boundary;
    - IO pins are fixed rectangles on M2 or M3. *)

type io_pin = { io_layer : Layer.t; io_rect : Mcl_geom.Rect.t }  (** dbu *)

type t = {
  num_sites : int;
  num_rows : int;
  site_width : int;       (** dbu *)
  row_height : int;       (** dbu *)
  hrail_period : int;     (** in rows; 0 disables horizontal stripes *)
  hrail_halfwidth : int;  (** dbu *)
  vrail_pitch : int;      (** in sites; 0 disables vertical stripes *)
  vrail_width : int;      (** dbu *)
  io_pins : io_pin list;
  blockages : Mcl_geom.Rect.t list;  (** site/row coordinates *)
  edge_spacing : int array array;    (** [sites]; indexed by edge types *)
}

val make :
  num_sites:int -> num_rows:int ->
  ?site_width:int -> ?row_height:int ->
  ?hrail_period:int -> ?hrail_halfwidth:int ->
  ?vrail_pitch:int -> ?vrail_width:int ->
  ?io_pins:io_pin list -> ?blockages:Mcl_geom.Rect.t list ->
  ?edge_spacing:int array array -> unit -> t

(** Die area in site/row coordinates. *)
val die : t -> Mcl_geom.Rect.t

(** Minimum spacing in sites required between a cell of edge type [l]
    followed (to its right) by a cell of edge type [r]. Out-of-range
    edge types get spacing 0. *)
val spacing : t -> l:int -> r:int -> int

(** Horizontal stripe y-extents in dbu, restricted to row boundaries
    that fall inside the die. *)
val hrail_stripes : t -> Mcl_geom.Interval.t list

(** [vrail_x_positions t] enumerates the dbu x-extents of the vertical
    stripes. *)
val vrail_stripes : t -> Mcl_geom.Interval.t list
