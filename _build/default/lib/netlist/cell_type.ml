type pin = { pin_name : string; layer : Layer.t; shape : Mcl_geom.Rect.t }

type t = {
  type_id : int;
  name : string;
  width : int;
  height : int;
  edge_type : int;
  pins : pin list;
}

let make ~type_id ~name ~width ~height ?(edge_type = 0) ?(pins = []) () =
  if width <= 0 || height <= 0 then invalid_arg "Cell_type.make: non-positive size";
  { type_id; name; width; height; edge_type; pins }

let pp ppf t =
  Format.fprintf ppf "%s(#%d %dx%d edge=%d pins=%d)" t.name t.type_id t.width
    t.height t.edge_type (List.length t.pins)
