(** Signal nets, used for HPWL accounting (paper Eq. 10's [S_hpwl]).

    A net endpoint is either a pin of a cell (dbu offset from the cell
    origin) or a fixed location such as an IO pad. *)

type endpoint =
  | Cell_pin of { cell : int; dx : int; dy : int }  (** offsets in dbu *)
  | Fixed_pin of { px : int; py : int }             (** absolute dbu *)

type t = { net_id : int; endpoints : endpoint list }

val make : net_id:int -> endpoints:endpoint list -> t
val pp : Format.formatter -> t -> unit
