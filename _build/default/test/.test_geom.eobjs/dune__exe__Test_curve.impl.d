test/test_curve.ml: Alcotest List Mcl Mcl_geom QCheck QCheck_alcotest
