test/test_flow.ml: Alcotest Array List Mcl_flow QCheck QCheck_alcotest
