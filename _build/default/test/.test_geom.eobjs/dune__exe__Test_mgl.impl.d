test/test_mgl.ml: Alcotest Array Cell Cell_type Design Fence Floorplan Format List Mcl Mcl_eval Mcl_gen Mcl_geom Mcl_netlist Printf QCheck QCheck_alcotest String
