test/test_components.ml: Alcotest Array Cell Cell_type Design Fence Floorplan Fmt Layer List Mcl Mcl_geom Mcl_netlist QCheck QCheck_alcotest
