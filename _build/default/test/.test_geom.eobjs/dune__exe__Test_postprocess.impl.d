test/test_postprocess.ml: Alcotest Array Cell Design Floorplan Format List Mcl Mcl_eval Mcl_gen Mcl_netlist Printf QCheck QCheck_alcotest String
