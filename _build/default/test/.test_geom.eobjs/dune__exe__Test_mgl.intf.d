test/test_mgl.mli:
