test/test_eco.ml: Alcotest Array Cell Design Floorplan List Mcl Mcl_eval Mcl_gen Mcl_netlist Printf QCheck QCheck_alcotest String
