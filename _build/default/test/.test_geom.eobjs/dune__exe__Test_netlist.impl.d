test/test_netlist.ml: Alcotest Array Cell Cell_type Design Fence Floorplan Layer List Mcl_geom Mcl_netlist Net
