test/test_bookshelf.ml: Alcotest Array Cell Design Fence List Mcl_bookshelf Mcl_gen Mcl_netlist Printf QCheck QCheck_alcotest String
