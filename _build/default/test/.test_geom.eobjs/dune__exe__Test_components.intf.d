test/test_components.mli:
