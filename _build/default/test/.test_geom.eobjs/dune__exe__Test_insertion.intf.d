test/test_insertion.mli:
