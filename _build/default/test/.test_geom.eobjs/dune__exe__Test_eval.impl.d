test/test_eval.ml: Alcotest Array Cell Cell_type Design Floorplan Layer List Mcl_eval Mcl_geom Mcl_netlist Net
