test/test_geom.ml: Alcotest Array List Mcl_geom QCheck QCheck_alcotest
