test/test_figures.ml: Alcotest Array Cell Cell_type Design Floorplan List Mcl Mcl_eval Mcl_flow Mcl_geom Mcl_netlist Printf
