test/test_bookshelf.mli:
