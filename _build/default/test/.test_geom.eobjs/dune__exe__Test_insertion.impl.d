test/test_insertion.ml: Alcotest Array Cell Cell_type Design Floorplan List Mcl Mcl_eval Mcl_geom Mcl_netlist Printf QCheck QCheck_alcotest
