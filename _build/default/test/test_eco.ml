(* Incremental re-legalization (Eco) and the SVG renderer. *)

open Mcl_netlist

let base_design seed =
  Mcl_gen.Generator.generate
    { Mcl_gen.Spec.default with
      Mcl_gen.Spec.seed;
      num_cells = 300;
      density = 0.55;
      height_mix = [ (1, 0.8); (2, 0.2) ];
      name = Printf.sprintf "eco%d" seed }

let test_eco_restores_legality () =
  let d = base_design 5 in
  let cfg = Mcl.Config.default in
  ignore (Mcl.Pipeline.run cfg d);
  (* rip three cells out and drop them on top of others *)
  let victims = [ 10; 77; 150 ] in
  List.iter
    (fun id ->
       let c = d.Design.cells.(id) in
       c.Cell.x <- d.Design.cells.(0).Cell.x;
       c.Cell.y <- d.Design.cells.(0).Cell.y)
    victims;
  Alcotest.(check bool) "broken before" false (Mcl_eval.Legality.is_legal d);
  let s = Mcl.Eco.relegalize cfg d ~cells:victims in
  Alcotest.(check int) "all reinserted" 3 s.Mcl.Eco.relegalized;
  Alcotest.(check bool) "legal after" true (Mcl_eval.Legality.is_legal d)

let test_eco_targets_move_cell () =
  let d = base_design 6 in
  let cfg = Mcl.Config.default in
  ignore (Mcl.Pipeline.run cfg d);
  let id = 42 in
  let c = d.Design.cells.(id) in
  let fp = d.Design.floorplan in
  (* ask for the far corner *)
  let tx = fp.Floorplan.num_sites - 20 and ty = fp.Floorplan.num_rows - 2 in
  ignore (Mcl.Eco.relegalize ~targets:[ (id, (tx, ty)) ] cfg d ~cells:[]);
  Alcotest.(check bool) "legal" true (Mcl_eval.Legality.is_legal d);
  let dist = abs (c.Cell.x - tx) + abs (c.Cell.y - ty) in
  Alcotest.(check bool)
    (Printf.sprintf "landed near the target (%d,%d vs %d,%d)" c.Cell.x c.Cell.y tx ty)
    true (dist < 20)

let test_eco_rejects_fixed () =
  let d =
    Mcl_gen.Generator.generate
      { Mcl_gen.Spec.default with
        Mcl_gen.Spec.num_cells = 100;
        num_macros = 1;
        name = "eco_fixed" }
  in
  let macro =
    Array.to_list d.Design.cells
    |> List.find (fun (c : Cell.t) -> c.Cell.is_fixed)
  in
  Alcotest.check_raises "fixed rejected"
    (Invalid_argument "Eco.relegalize: cell is fixed")
    (fun () ->
       ignore (Mcl.Eco.relegalize Mcl.Config.default d ~cells:[ macro.Cell.id ]))

let prop_eco_preserves_rest =
  QCheck.Test.make ~name:"eco leaves distant cells untouched" ~count:6
    QCheck.(int_range 1 500)
    (fun seed ->
       let d = base_design seed in
       let cfg = Mcl.Config.default in
       ignore (Mcl.Pipeline.run cfg d);
       let snap = Design.snapshot d in
       let victim = seed mod 200 in
       if d.Design.cells.(victim).Cell.is_fixed then true
       else begin
         ignore (Mcl.Eco.relegalize cfg d ~cells:[ victim ]);
         (* cells further than the largest window from the victim's GP
            cannot have moved *)
         let v = d.Design.cells.(victim) in
         let moved_far =
           Array.exists
             (fun (c : Cell.t) ->
                let ox, oy = snap.(c.Cell.id) in
                (c.Cell.x <> ox || c.Cell.y <> oy)
                && c.Cell.id <> victim
                && (abs (ox - v.Cell.gp_x) > 400 || abs (oy - v.Cell.gp_y) > 40))
             d.Design.cells
         in
         Mcl_eval.Legality.is_legal d && not moved_far
       end)

let test_svg_renders () =
  let d = base_design 7 in
  ignore (Mcl.Pipeline.run Mcl.Config.default d);
  let svg = Mcl_eval.Svg_render.render d in
  Alcotest.(check bool) "is svg" true
    (String.length svg > 200
     && String.sub svg 0 4 = "<svg"
     && String.length svg - 7 = String.index_from svg (String.length svg - 8) '<');
  (* one rect per cell at least *)
  let rects = ref 0 in
  String.iteri (fun i ch -> if ch = 'r' && i + 4 < String.length svg
                  && String.sub svg i 5 = "rect " then incr rects) svg;
  Alcotest.(check bool) "cells drawn" true (!rects >= Design.num_cells d)

let () =
  Alcotest.run "eco"
    [ ("eco",
       [ Alcotest.test_case "restores legality" `Quick test_eco_restores_legality;
         Alcotest.test_case "target override" `Quick test_eco_targets_move_cell;
         Alcotest.test_case "rejects fixed" `Quick test_eco_rejects_fixed;
         QCheck_alcotest.to_alcotest prop_eco_preserves_rest ]);
      ("svg", [ Alcotest.test_case "renders" `Quick test_svg_renders ]) ]
