open Mcl_netlist

let designs_equal (a : Design.t) (b : Design.t) =
  a.Design.name = b.Design.name
  && a.Design.floorplan = b.Design.floorplan
  && a.Design.cell_types = b.Design.cell_types
  && Array.for_all2
       (fun (x : Cell.t) (y : Cell.t) ->
          x.Cell.id = y.Cell.id && x.Cell.type_id = y.Cell.type_id
          && x.Cell.region = y.Cell.region && x.Cell.is_fixed = y.Cell.is_fixed
          && x.Cell.gp_x = y.Cell.gp_x && x.Cell.gp_y = y.Cell.gp_y
          && x.Cell.x = y.Cell.x && x.Cell.y = y.Cell.y)
       a.Design.cells b.Design.cells
  && a.Design.nets = b.Design.nets
  && Array.for_all2
       (fun (f : Fence.t) (g : Fence.t) ->
          f.Fence.fence_id = g.Fence.fence_id && f.Fence.name = g.Fence.name
          && f.Fence.rects = g.Fence.rects)
       a.Design.fences b.Design.fences

let test_roundtrip_generated () =
  let spec =
    { Mcl_gen.Spec.default with
      Mcl_gen.Spec.name = "roundtrip";
      num_cells = 200;
      num_fences = 2;
      fence_cell_frac = 0.1;
      routability = true }
  in
  let d = Mcl_gen.Generator.generate spec in
  (* move some cells so current <> gp *)
  d.Design.cells.(0).Cell.x <- d.Design.cells.(0).Cell.x + 3;
  d.Design.cells.(1).Cell.y <- max 0 (d.Design.cells.(1).Cell.y - 1);
  let text = Mcl_bookshelf.Writer.write d in
  match Mcl_bookshelf.Parser.parse text with
  | Error msg -> Alcotest.fail msg
  | Ok d2 -> Alcotest.(check bool) "roundtrip equal" true (designs_equal d d2)

let prop_roundtrip =
  QCheck.Test.make ~name:"write/parse roundtrip" ~count:15
    QCheck.(int_range 1 10000)
    (fun seed ->
       let spec =
         { Mcl_gen.Spec.default with
           Mcl_gen.Spec.name = Printf.sprintf "rt%d" seed;
           seed;
           num_cells = 120;
           num_fences = seed mod 3;
           fence_cell_frac = (if seed mod 3 > 0 then 0.1 else 0.0);
           routability = seed mod 2 = 0 }
       in
       let d = Mcl_gen.Generator.generate spec in
       match Mcl_bookshelf.Parser.parse (Mcl_bookshelf.Writer.write d) with
       | Error _ -> false
       | Ok d2 -> designs_equal d d2)

let test_parse_errors () =
  let check_err text =
    match Mcl_bookshelf.Parser.parse text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected parse error"
  in
  check_err "";
  check_err "GARBAGE 1 x\n";
  check_err "MCLBENCH 1 d\nfloorplan 10 10\n";
  check_err
    "MCLBENCH 1 d\nfloorplan 10 10 1 10 0 0 0 0\nedge_spacing 0\nio_pins 0\n\
     blockages 0\ncell_types 1\nfoo bar baz\n"

let test_comments_and_blank_lines () =
  let d =
    Mcl_gen.Generator.generate
      { Mcl_gen.Spec.default with Mcl_gen.Spec.num_cells = 50; name = "c" }
  in
  let text = Mcl_bookshelf.Writer.write d in
  let noisy = "# header comment\n\n" ^ String.concat "\n# mid comment\n"
                (String.split_on_char '\n' text |> fun l -> [ List.hd l ])
              ^ "\n" ^ String.concat "\n" (List.tl (String.split_on_char '\n' text))
  in
  match Mcl_bookshelf.Parser.parse noisy with
  | Error msg -> Alcotest.fail msg
  | Ok d2 -> Alcotest.(check bool) "parsed with comments" true (designs_equal d d2)

let () =
  Alcotest.run "bookshelf"
    [ ("roundtrip",
       [ Alcotest.test_case "generated design" `Quick test_roundtrip_generated;
         QCheck_alcotest.to_alcotest prop_roundtrip;
         Alcotest.test_case "comments/blank lines" `Quick test_comments_and_blank_lines ]);
      ("errors", [ Alcotest.test_case "malformed inputs" `Quick test_parse_errors ]) ]
