module Interval = Mcl_geom.Interval
module Rect = Mcl_geom.Rect
module Prng = Mcl_geom.Prng

let iv lo hi = Interval.make lo hi

let test_interval_basics () =
  Alcotest.(check int) "length" 5 (Interval.length (iv 2 7));
  Alcotest.(check bool) "empty" true (Interval.is_empty (iv 3 3));
  Alcotest.(check bool) "contains lo" true (Interval.contains (iv 2 7) 2);
  Alcotest.(check bool) "excludes hi" false (Interval.contains (iv 2 7) 7);
  Alcotest.(check bool) "overlap" true (Interval.overlaps (iv 0 5) (iv 4 9));
  Alcotest.(check bool) "touch no overlap" false (Interval.overlaps (iv 0 5) (iv 5 9));
  Alcotest.(check bool) "inter" true (Interval.equal (iv 4 5) (Interval.inter (iv 0 5) (iv 4 9)));
  Alcotest.(check bool) "inter empty" true (Interval.is_empty (Interval.inter (iv 0 2) (iv 5 9)));
  Alcotest.(check bool) "hull" true (Interval.equal (iv 0 9) (Interval.hull (iv 0 5) (iv 4 9)))

let test_interval_subtract () =
  let got = Interval.subtract (iv 0 10) [ iv 2 4; iv 6 7 ] in
  let expected = [ iv 0 2; iv 4 6; iv 7 10 ] in
  Alcotest.(check int) "pieces" (List.length expected) (List.length got);
  List.iter2
    (fun a b -> Alcotest.(check bool) "piece equal" true (Interval.equal a b))
    expected got;
  (* unsorted, overlapping cuts *)
  let got = Interval.subtract (iv 0 10) [ iv 8 12; iv (-3) 1; iv 7 9 ] in
  let expected = [ iv 1 7 ] in
  Alcotest.(check int) "pieces2" 1 (List.length got);
  List.iter2
    (fun a b -> Alcotest.(check bool) "piece equal2" true (Interval.equal a b))
    expected got;
  Alcotest.(check int) "full cut" 0
    (List.length (Interval.subtract (iv 0 10) [ iv 0 10 ]))

let test_interval_clamp () =
  Alcotest.(check int) "below" 2 (Interval.clamp (iv 2 7) 0);
  Alcotest.(check int) "above" 6 (Interval.clamp (iv 2 7) 100);
  Alcotest.(check int) "inside" 4 (Interval.clamp (iv 2 7) 4)

let test_rect_basics () =
  let r = Rect.make ~xl:0 ~yl:0 ~xh:4 ~yh:2 in
  Alcotest.(check int) "area" 8 (Rect.area r);
  Alcotest.(check bool) "overlap" true
    (Rect.overlaps r (Rect.make ~xl:3 ~yl:1 ~xh:5 ~yh:3));
  Alcotest.(check bool) "no overlap (abut)" false
    (Rect.overlaps r (Rect.make ~xl:4 ~yl:0 ~xh:6 ~yh:2));
  Alcotest.(check bool) "contains" true
    (Rect.contains_rect r (Rect.make ~xl:1 ~yl:0 ~xh:3 ~yh:1));
  Alcotest.(check bool) "contains point" true (Rect.contains_point r (0, 0));
  Alcotest.(check bool) "excl corner" false (Rect.contains_point r (4, 2));
  let s = Rect.shift r ~dx:2 ~dy:5 in
  Alcotest.(check bool) "shift" true
    (Rect.equal s (Rect.make ~xl:2 ~yl:5 ~xh:6 ~yh:7))

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create 43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1000 <> Prng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seed differs" true !differs

let test_prng_ranges () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int t 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let y = Prng.int_in t (-5) 5 in
    Alcotest.(check bool) "int_in range" true (y >= -5 && y <= 5);
    let f = Prng.float t 2.0 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.0)
  done

let test_prng_gaussian_moments () =
  let t = Prng.create 11 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian t ~mu:3.0 ~sigma:2.0 in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean close" true (abs_float (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "var close" true (abs_float (var -. 4.0) < 0.3)

let test_prng_shuffle_permutes () =
  let t = Prng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let prop_subtract_disjoint_and_covers =
  QCheck.Test.make ~name:"interval subtract: result disjoint, inside, disjoint from cuts"
    ~count:500
    QCheck.(triple (pair small_int small_int) (list (pair small_int small_int)) unit)
    (fun ((a, b), cuts, ()) ->
       let lo = min a b and hi = max a b in
       let base = iv lo hi in
       let cuts = List.map (fun (c, d) -> iv (min c d) (max c d)) cuts in
       let pieces = Interval.subtract base cuts in
       (* each piece inside base, no overlap with any cut, sorted *)
       List.for_all
         (fun p ->
            p.Interval.lo >= lo && p.Interval.hi <= hi
            && (not (Interval.is_empty p))
            && not (List.exists (Interval.overlaps p) cuts))
         pieces
       &&
       (* every base point not in cuts is in exactly one piece *)
       let ok = ref true in
       for x = lo to hi - 1 do
         let in_cut = List.exists (fun c -> Interval.contains c x) cuts in
         let count =
           List.length (List.filter (fun p -> Interval.contains p x) pieces)
         in
         if in_cut && count <> 0 then ok := false;
         if (not in_cut) && count <> 1 then ok := false
       done;
       !ok)

let () =
  Alcotest.run "geom"
    [ ("interval",
       [ Alcotest.test_case "basics" `Quick test_interval_basics;
         Alcotest.test_case "subtract" `Quick test_interval_subtract;
         Alcotest.test_case "clamp" `Quick test_interval_clamp;
         QCheck_alcotest.to_alcotest prop_subtract_disjoint_and_covers ]);
      ("rect", [ Alcotest.test_case "basics" `Quick test_rect_basics ]);
      ("prng",
       [ Alcotest.test_case "determinism" `Quick test_prng_determinism;
         Alcotest.test_case "ranges" `Quick test_prng_ranges;
         Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
         Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes ]) ]
