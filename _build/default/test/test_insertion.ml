(* Exhaustive cross-check of the insertion-point machinery: on tiny
   single-row instances, Insertion.best must find the same optimal cost
   as brute-force enumeration over every combination of target position
   and push-only shifts of the local cells. *)

open Mcl_netlist

let sites = 16

let make_design ~widths ~gps ~curs ~target_w ~target_gp =
  let n = Array.length widths in
  let types =
    Array.init (n + 1) (fun i ->
        let w = if i < n then widths.(i) else target_w in
        Cell_type.make ~type_id:i ~name:(Printf.sprintf "t%d" i) ~width:w
          ~height:1 ())
  in
  let cells =
    Array.init (n + 1) (fun i ->
        if i < n then begin
          let c = Cell.make ~id:i ~type_id:i ~gp_x:gps.(i) ~gp_y:0 () in
          c.Cell.x <- curs.(i);
          c
        end
        else Cell.make ~id:i ~type_id:i ~gp_x:target_gp ~gp_y:0 ())
  in
  let fp = Floorplan.make ~num_sites:sites ~num_rows:1 () in
  Design.make ~name:"tiny" ~floorplan:fp ~cell_types:types ~cells ()

(* Brute force over MGL's move model: locals keep their relative order,
   the target is inserted at some order slot k and position x_t (both
   enumerated exhaustively); locals are then pushed minimally — left
   cells right-to-left to p = min(cur, limit - w), right cells
   left-to-right to p = max(cur, limit) — exactly the saturating-shift
   semantics the displacement curves encode. *)
let brute_force design ~target =
  let cells = design.Design.cells in
  let n = Array.length cells - 1 in
  let w i = Design.width design cells.(i) in
  let order =
    List.init n (fun i -> i)
    |> List.sort (fun a b -> compare cells.(a).Cell.x cells.(b).Cell.x)
    |> Array.of_list
  in
  let tw = Design.width design cells.(target) in
  let best = ref infinity in
  for k = 0 to n do
    for x_t = 0 to sites - tw do
      (* push left cells (order slots k-1 .. 0) right-to-left *)
      let feasible = ref true in
      let cost = ref (float_of_int (abs (x_t - cells.(target).Cell.gp_x))) in
      let limit = ref x_t in
      for s = k - 1 downto 0 do
        let id = order.(s) in
        let p = min cells.(id).Cell.x (!limit - w id) in
        if p < 0 then feasible := false;
        cost :=
          !cost
          +. float_of_int
               (abs (p - cells.(id).Cell.gp_x)
                - abs (cells.(id).Cell.x - cells.(id).Cell.gp_x));
        limit := p
      done;
      let limit = ref (x_t + tw) in
      for s = k to n - 1 do
        let id = order.(s) in
        let p = max cells.(id).Cell.x !limit in
        if p + w id > sites then feasible := false;
        cost :=
          !cost
          +. float_of_int
               (abs (p - cells.(id).Cell.gp_x)
                - abs (cells.(id).Cell.x - cells.(id).Cell.gp_x));
        limit := p + w id
      done;
      if !feasible && !cost < !best then best := !cost
    done
  done;
  if !best = infinity then None else Some !best

let run_insertion design ~target =
  let cfg = Mcl.Config.total_displacement in
  let segments = Mcl.Segment.build ~respect_fences:false design in
  let placement = Mcl.Placement.create design in
  Array.iter
    (fun (c : Cell.t) -> if c.Cell.id <> target then Mcl.Placement.add placement c.Cell.id)
    design.Design.cells;
  let ctx =
    Mcl.Insertion.make_ctx cfg design ~placement ~segments ~routability:None
  in
  let window = Mcl_geom.Rect.make ~xl:0 ~yl:0 ~xh:sites ~yh:1 in
  Mcl.Insertion.best ctx ~target ~window

let gen_instance seed =
  let rng = Mcl_geom.Prng.create seed in
  let n = 1 + Mcl_geom.Prng.int rng 3 in
  let widths = Array.init n (fun _ -> 1 + Mcl_geom.Prng.int rng 3) in
  (* non-overlapping current positions *)
  let curs = Array.make n 0 in
  let ok = ref true in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    let slack = Mcl_geom.Prng.int rng 3 in
    curs.(i) <- !pos + slack;
    pos := curs.(i) + widths.(i)
  done;
  if !pos > sites then ok := false;
  let gps = Array.init n (fun _ -> Mcl_geom.Prng.int rng (sites - 1)) in
  let target_w = 1 + Mcl_geom.Prng.int rng 3 in
  let target_gp = Mcl_geom.Prng.int rng (sites - target_w) in
  if !ok then Some (make_design ~widths ~gps ~curs ~target_w ~target_gp)
  else None

let prop_insertion_matches_brute_force =
  QCheck.Test.make ~name:"Insertion.best == brute force on tiny rows" ~count:150
    QCheck.(int_range 1 100000)
    (fun seed ->
       match gen_instance seed with
       | None -> true
       | Some design ->
         let target = Array.length design.Design.cells - 1 in
         let brute = brute_force design ~target in
         (match run_insertion design ~target, brute with
          | None, None -> true
          | Some cand, Some b ->
            (* MGL's enumeration may be restricted (cuts around GP), so
               it can be >= the brute optimum but never better; on these
               tiny instances it must match exactly *)
            abs_float (cand.Mcl.Insertion.cost -. b) < 1e-6
          | Some _, None -> false
          | None, Some _ -> false))

(* applying the best candidate must produce a legal row with exactly
   the predicted cost *)
let prop_apply_consistent =
  QCheck.Test.make ~name:"apply realizes the predicted cost" ~count:150
    QCheck.(int_range 1 100000)
    (fun seed ->
       match gen_instance seed with
       | None -> true
       | Some design ->
         let target = Array.length design.Design.cells - 1 in
         let before =
           Array.to_list design.Design.cells
           |> List.filter (fun (c : Cell.t) -> c.Cell.id <> target)
           |> List.map (fun (c : Cell.t) ->
               float_of_int (abs (c.Cell.x - c.Cell.gp_x)))
           |> List.fold_left ( +. ) 0.0
         in
         let cfg = Mcl.Config.total_displacement in
         let segments = Mcl.Segment.build ~respect_fences:false design in
         let placement = Mcl.Placement.create design in
         Array.iter
           (fun (c : Cell.t) ->
              if c.Cell.id <> target then Mcl.Placement.add placement c.Cell.id)
           design.Design.cells;
         let ctx =
           Mcl.Insertion.make_ctx cfg design ~placement ~segments ~routability:None
         in
         let window = Mcl_geom.Rect.make ~xl:0 ~yl:0 ~xh:sites ~yh:1 in
         (match Mcl.Insertion.best ctx ~target ~window with
          | None -> true
          | Some cand ->
            Mcl.Insertion.apply ctx ~target cand;
            let after =
              Array.to_list design.Design.cells
              |> List.map (fun (c : Cell.t) ->
                  float_of_int (abs (c.Cell.x - c.Cell.gp_x)))
              |> List.fold_left ( +. ) 0.0
            in
            Mcl_eval.Legality.is_legal design
            && abs_float (after -. before -. cand.Mcl.Insertion.cost) < 1e-6))

let () =
  Alcotest.run "insertion"
    [ ("brute-force",
       [ QCheck_alcotest.to_alcotest prop_insertion_matches_brute_force;
         QCheck_alcotest.to_alcotest prop_apply_consistent ]) ]
