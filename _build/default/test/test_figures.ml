(* Reproductions of the paper's illustrative figures as regression
   tests: Fig. 3 (MGL vs MLL toy) and Fig. 5 (3-cell MCF toy). *)

open Mcl_netlist

(* ---- Figure 3 ---- *)

let fig3_design () =
  let fp = Floorplan.make ~num_sites:12 ~num_rows:1 ~site_width:2 ~row_height:20 () in
  let types =
    [| Cell_type.make ~type_id:0 ~name:"w1" ~width:1 ~height:1 ();
       Cell_type.make ~type_id:1 ~name:"w2" ~width:2 ~height:1 () |]
  in
  let cells =
    [| Cell.make ~id:0 ~type_id:1 ~gp_x:1 ~gp_y:0 ();
       Cell.make ~id:1 ~type_id:0 ~gp_x:4 ~gp_y:0 ();
       Cell.make ~id:2 ~type_id:0 ~gp_x:9 ~gp_y:0 ();
       Cell.make ~id:3 ~type_id:1 ~gp_x:3 ~gp_y:0 () |]
  in
  cells.(1).Cell.x <- 3;
  cells.(2).Cell.x <- 10;
  Design.make ~name:"fig3" ~floorplan:fp ~cell_types:types ~cells ()

let insert ~disp_from =
  let d = fig3_design () in
  let cfg = Mcl.Config.total_displacement in
  let segments = Mcl.Segment.build ~respect_fences:false d in
  let placement = Mcl.Placement.create d in
  List.iter (Mcl.Placement.add placement) [ 0; 1; 2 ];
  let ctx =
    Mcl.Insertion.make_ctx ~disp_from cfg d ~placement ~segments ~routability:None
  in
  let window = Mcl_geom.Rect.make ~xl:0 ~yl:0 ~xh:12 ~yh:1 in
  (match Mcl.Insertion.best ctx ~target:3 ~window with
   | Some cand -> Mcl.Insertion.apply ctx ~target:3 cand
   | None -> Alcotest.fail "no insertion point");
  d

let test_fig3_mll_total_three () =
  let d = insert ~disp_from:`Current in
  Alcotest.(check bool) "legal" true (Mcl_eval.Legality.is_legal d);
  Alcotest.(check (float 1e-9)) "MLL lands at total 3" 3.0
    (Mcl_eval.Metrics.total_displacement_sites d)

let test_fig3_mgl_total_two () =
  let d = insert ~disp_from:`Gp in
  Alcotest.(check bool) "legal" true (Mcl_eval.Legality.is_legal d);
  Alcotest.(check (float 1e-9)) "MGL lands at total 2" 2.0
    (Mcl_eval.Metrics.total_displacement_sites d);
  (* the pre-displaced cell D was pushed back through its GP *)
  Alcotest.(check int) "target at its GP" 3 d.Design.cells.(3).Cell.x

(* ---- Figure 5 ---- *)

let test_fig5_toy_mcf () =
  let fp = Floorplan.make ~num_sites:12 ~num_rows:2 ~site_width:2 ~row_height:20 () in
  let types =
    [| Cell_type.make ~type_id:0 ~name:"s" ~width:4 ~height:1 ();
       Cell_type.make ~type_id:1 ~name:"d" ~width:4 ~height:2 () |]
  in
  let cells =
    [| Cell.make ~id:0 ~type_id:0 ~gp_x:2 ~gp_y:0 ();
       Cell.make ~id:1 ~type_id:0 ~gp_x:2 ~gp_y:1 ();
       Cell.make ~id:2 ~type_id:1 ~gp_x:4 ~gp_y:0 () |]
  in
  cells.(0).Cell.x <- 0;
  cells.(1).Cell.x <- 1;
  cells.(2).Cell.x <- 6;
  let d = Design.make ~name:"fig5" ~floorplan:fp ~cell_types:types ~cells () in
  let cfg = { Mcl.Config.total_displacement with Mcl.Config.n0_factor = 0.0 } in
  let s = Mcl.Row_order_opt.run cfg d in
  Alcotest.(check int) "c1 at gp" 2 d.Design.cells.(0).Cell.x;
  Alcotest.(check int) "c2 at gp" 2 d.Design.cells.(1).Cell.x;
  Alcotest.(check int) "c3 pinned by both neighbours" 6 d.Design.cells.(2).Cell.x;
  Alcotest.(check bool) "legal" true (Mcl_eval.Legality.is_legal d);
  (* optimal weighted x displacement: only c3 displaced by 2; weight 16 *)
  Alcotest.(check (float 1e-9)) "objective optimal" 32.0
    s.Mcl.Row_order_opt.weighted_disp_after

(* Paper claim (abstract): the maximum-displacement extension never
   makes the result illegal and the solver agrees across pivot rules. *)
let test_fig5_solver_agreement () =
  List.iter
    (fun solver ->
       let fp = Floorplan.make ~num_sites:30 ~num_rows:2 ~site_width:2 ~row_height:20 () in
       let types = [| Cell_type.make ~type_id:0 ~name:"s" ~width:4 ~height:1 () |] in
       let cells =
         Array.init 5 (fun i ->
             let c = Cell.make ~id:i ~type_id:0 ~gp_x:(3 * i) ~gp_y:0 () in
             c.Cell.x <- 5 * i;
             c)
       in
       let d = Design.make ~name:"agree" ~floorplan:fp ~cell_types:types ~cells () in
       let cfg =
         { Mcl.Config.total_displacement with Mcl.Config.solver = solver; n0_factor = 0.0 }
       in
       let s = Mcl.Row_order_opt.run cfg d in
       Alcotest.(check bool)
         (Printf.sprintf "legal with solver variant")
         true
         (Mcl_eval.Legality.is_legal d);
       (* cells can pack to 0,3,6,9,13 wait: widths 4: 0,4,8,12,16; gps
          0,3,6,9,12: optimum is x_i = max(gp chain): 0,4,8,12,16 ->
          disp 0+1+2+3+4 = 10 (x16 weight) *)
       Alcotest.(check (float 1e-9)) "objective" 160.0
         s.Mcl.Row_order_opt.weighted_disp_after)
    [ Mcl_flow.Mcf.Network_simplex_block; Mcl_flow.Mcf.Network_simplex_first ]

let () =
  Alcotest.run "figures"
    [ ("fig3",
       [ Alcotest.test_case "MLL totals 3" `Quick test_fig3_mll_total_three;
         Alcotest.test_case "MGL totals 2" `Quick test_fig3_mgl_total_two ]);
      ("fig5",
       [ Alcotest.test_case "3-cell toy optimum" `Quick test_fig5_toy_mcf;
         Alcotest.test_case "pivot rules agree" `Quick test_fig5_solver_agreement ]) ]
