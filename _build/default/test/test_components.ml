(* Unit tests for the core data structures: Segment, Placement and the
   Routability navigator. *)

module Rect = Mcl_geom.Rect
module Interval = Mcl_geom.Interval
open Mcl_netlist

let ct ?(edge_type = 0) ?(pins = []) id name w h =
  Cell_type.make ~type_id:id ~name ~width:w ~height:h ~edge_type ~pins ()

(* ---- Segment ---- *)

let seg_design () =
  let fp =
    Floorplan.make ~num_sites:100 ~num_rows:6
      ~blockages:[ Rect.make ~xl:40 ~yl:0 ~xh:50 ~yh:2 ] ()
  in
  let fence =
    Fence.make ~fence_id:1 ~name:"f" ~rects:[ Rect.make ~xl:60 ~yl:0 ~xh:90 ~yh:4 ]
  in
  let types = [| ct 0 "a" 4 1 |] in
  let cells = [| Cell.make ~id:0 ~type_id:0 ~gp_x:0 ~gp_y:0 () |] in
  Design.make ~name:"seg" ~floorplan:fp ~cell_types:types ~cells
    ~fences:[| fence |] ()

let iv_list = Alcotest.testable
    (Fmt.list Interval.pp)
    (fun a b -> List.length a = List.length b && List.for_all2 Interval.equal a b)

let test_segment_default_region () =
  let d = seg_design () in
  let s = Mcl.Segment.build ~respect_fences:true d in
  Alcotest.(check int) "regions" 2 (Mcl.Segment.num_regions s);
  (* row 0: die minus blockage [40,50) minus fence [60,90) *)
  Alcotest.check iv_list "row 0 default"
    [ Interval.make 0 40; Interval.make 50 60; Interval.make 90 100 ]
    (Mcl.Segment.spans s ~row:0 ~region:0);
  (* row 2: blockage gone, fence still there *)
  Alcotest.check iv_list "row 2 default"
    [ Interval.make 0 60; Interval.make 90 100 ]
    (Mcl.Segment.spans s ~row:2 ~region:0);
  (* row 5: above the fence *)
  Alcotest.check iv_list "row 5 default" [ Interval.make 0 100 ]
    (Mcl.Segment.spans s ~row:5 ~region:0)

let test_segment_fence_region () =
  let d = seg_design () in
  let s = Mcl.Segment.build ~respect_fences:true d in
  Alcotest.check iv_list "fence row 1" [ Interval.make 60 90 ]
    (Mcl.Segment.spans s ~row:1 ~region:1);
  Alcotest.check iv_list "fence row 4 empty" [] (Mcl.Segment.spans s ~row:4 ~region:1);
  (match Mcl.Segment.span_at s ~row:1 ~region:1 ~x:75 with
   | Some span -> Alcotest.(check bool) "span_at" true (Interval.equal span (Interval.make 60 90))
   | None -> Alcotest.fail "span_at missed");
  Alcotest.(check bool) "span_at outside" true
    (Mcl.Segment.span_at s ~row:1 ~region:1 ~x:30 = None)

let test_segment_no_fences_mode () =
  let d = seg_design () in
  let s = Mcl.Segment.build ~respect_fences:false d in
  Alcotest.(check int) "one region" 1 (Mcl.Segment.num_regions s);
  (* fence ignored; blockage still honored *)
  Alcotest.check iv_list "row 0"
    [ Interval.make 0 40; Interval.make 50 100 ]
    (Mcl.Segment.spans s ~row:0 ~region:0)

let test_segment_boundary_gap () =
  let d = seg_design () in
  let s = Mcl.Segment.build ~boundary_gap:2 ~respect_fences:true d in
  Alcotest.check iv_list "row 0 padded"
    [ Interval.make 2 38; Interval.make 52 58; Interval.make 92 98 ]
    (Mcl.Segment.spans s ~row:0 ~region:0)

let test_segment_region_area () =
  let d = seg_design () in
  let s = Mcl.Segment.build ~respect_fences:true d in
  (* fence: 30 sites x 4 rows *)
  Alcotest.(check int) "fence area" 120 (Mcl.Segment.region_area s ~region:1)

(* ---- Placement ---- *)

let placement_design () =
  let fp = Floorplan.make ~num_sites:60 ~num_rows:4 () in
  let types = [| ct 0 "s" 5 1; ct 1 "d" 5 2 |] in
  let cells =
    [| Cell.make ~id:0 ~type_id:0 ~gp_x:10 ~gp_y:0 ();
       Cell.make ~id:1 ~type_id:0 ~gp_x:20 ~gp_y:0 ();
       Cell.make ~id:2 ~type_id:1 ~gp_x:15 ~gp_y:0 () |]
  in
  Design.make ~name:"pl" ~floorplan:fp ~cell_types:types ~cells ()

let test_placement_rows_sorted () =
  let d = placement_design () in
  let p = Mcl.Placement.create d in
  Mcl.Placement.add p 1;
  Mcl.Placement.add p 0;
  Mcl.Placement.add p 2;
  Alcotest.(check bool) "well formed" true (Mcl.Placement.well_formed p);
  let arr, len = Mcl.Placement.row_cells p 0 in
  Alcotest.(check (list int)) "row 0 sorted by x" [ 0; 2; 1 ]
    (Array.to_list (Array.sub arr 0 len));
  (* the double-height cell also sits in row 1 *)
  let arr, len = Mcl.Placement.row_cells p 1 in
  Alcotest.(check (list int)) "row 1" [ 2 ] (Array.to_list (Array.sub arr 0 len))

let test_placement_remove_and_membership () =
  let d = placement_design () in
  let p = Mcl.Placement.create d in
  Mcl.Placement.add p 2;
  Alcotest.(check bool) "mem" true (Mcl.Placement.mem p 2);
  Mcl.Placement.remove p 2;
  Alcotest.(check bool) "removed" false (Mcl.Placement.mem p 2);
  let _, len = Mcl.Placement.row_cells p 1 in
  Alcotest.(check int) "row emptied" 0 len;
  Alcotest.check_raises "double remove rejected"
    (Invalid_argument "Placement.remove: not registered")
    (fun () -> Mcl.Placement.remove p 2)

let test_placement_iter_in_range () =
  let d = placement_design () in
  let p = Mcl.Placement.of_design d in
  let hits = ref [] in
  Mcl.Placement.iter_in_range p ~row:0 (Interval.make 12 21) (fun id ->
      hits := id :: !hits);
  (* cell 0 spans [10,15), cell 2 [15,20), cell 1 [20,25) *)
  Alcotest.(check (list int)) "overlapping range" [ 0; 2; 1 ] (List.rev !hits)

(* ---- Routability navigator ---- *)

let rout_design () =
  let pins =
    [ { Cell_type.pin_name = "low";
        layer = Layer.M1;
        shape = Rect.make ~xl:2 ~yl:0 ~xh:4 ~yh:3 };
      { Cell_type.pin_name = "mid_m2";
        layer = Layer.M2;
        shape = Rect.make ~xl:6 ~yl:8 ~xh:8 ~yh:11 } ]
  in
  let fp =
    Floorplan.make ~num_sites:128 ~num_rows:16 ~site_width:2 ~row_height:20
      ~hrail_period:4 ~hrail_halfwidth:3 ~vrail_pitch:32 ~vrail_width:2 ()
  in
  let types = [| ct 0 "t" 8 1 ~pins; ct 1 "plain" 8 1 |] in
  let cells = [| Cell.make ~id:0 ~type_id:0 ~gp_x:10 ~gp_y:1 () |] in
  Design.make ~name:"rt" ~floorplan:fp ~cell_types:types ~cells ()

let test_row_ok_periodicity () =
  let d = rout_design () in
  let r = Mcl.Routability.create d in
  (* the M1 pin touches rows adjacent to every 4th boundary: row 0, 4,
     8 ... conflict (pin y-span 0..3 under stripe -3..3) *)
  Alcotest.(check bool) "row 0 blocked" false (Mcl.Routability.row_ok r ~type_id:0 ~y:0);
  Alcotest.(check bool) "row 4 blocked" false (Mcl.Routability.row_ok r ~type_id:0 ~y:4);
  Alcotest.(check bool) "row 1 fine" true (Mcl.Routability.row_ok r ~type_id:0 ~y:1);
  (* a pinless type is never blocked *)
  for y = 0 to 15 do
    Alcotest.(check bool) "plain type ok" true (Mcl.Routability.row_ok r ~type_id:1 ~y)
  done

let test_x_ok_and_nearest () =
  let d = rout_design () in
  let r = Mcl.Routability.create d in
  (* M2 pin x-span at position x: [2x+6, 2x+8); M3 stripes at
     64k +- 1 dbu. x = 29 -> span 64..66 overlaps stripe 63..65. *)
  Alcotest.(check bool) "conflict column" false (Mcl.Routability.x_ok r ~type_id:0 ~x:29);
  Alcotest.(check bool) "free column" true (Mcl.Routability.x_ok r ~type_id:0 ~x:20);
  (match Mcl.Routability.nearest_ok_x r ~type_id:0 ~x:29 ~lo:0 ~hi:100 with
   | Some x ->
     Alcotest.(check bool) "nearest is adjacent" true (abs (x - 29) <= 2);
     Alcotest.(check bool) "nearest ok" true (Mcl.Routability.x_ok r ~type_id:0 ~x)
   | None -> Alcotest.fail "expected a free column");
  (* pinless type: everything ok *)
  Alcotest.(check bool) "plain ok" true (Mcl.Routability.x_ok r ~type_id:1 ~x:29)

let test_feasible_range_stops_at_conflicts () =
  let d = rout_design () in
  let r = Mcl.Routability.create d in
  let lo, hi =
    Mcl.Routability.feasible_x_range r ~type_id:0 ~x:20 ~y:1 ~span_lo:0
      ~span_hi:120 ~max_reach:64
  in
  Alcotest.(check bool) "contains start" true (lo <= 20 && 20 <= hi);
  (* the range must not contain the conflicting column 29 *)
  Alcotest.(check bool) "stops before conflict" true (hi < 29);
  (* every column in the range is clean *)
  for x = lo to hi do
    Alcotest.(check bool) "clean" true (Mcl.Routability.x_ok r ~type_id:0 ~x)
  done

let prop_placement_add_remove_random =
  QCheck.Test.make ~name:"placement add/remove keeps rows well-formed" ~count:100
    QCheck.(int_range 1 10000)
    (fun seed ->
       let rng = Mcl_geom.Prng.create seed in
       let fp = Floorplan.make ~num_sites:200 ~num_rows:6 () in
       let types = [| ct 0 "s" 4 1; ct 1 "d" 4 2 |] in
       let n = 20 in
       let cells =
         Array.init n (fun i ->
             let tid = Mcl_geom.Prng.int rng 2 in
             let c = Cell.make ~id:i ~type_id:tid ~gp_x:(9 * i) ~gp_y:0 () in
             c.Cell.y <- (if tid = 1 then 2 * Mcl_geom.Prng.int rng 3 else Mcl_geom.Prng.int rng 6);
             c)
       in
       let d = Design.make ~name:"pp" ~floorplan:fp ~cell_types:types ~cells () in
       let p = Mcl.Placement.create d in
       let registered = Array.make n false in
       for _ = 1 to 120 do
         let i = Mcl_geom.Prng.int rng n in
         if registered.(i) then begin
           Mcl.Placement.remove p i;
           registered.(i) <- false
         end
         else begin
           Mcl.Placement.add p i;
           registered.(i) <- true
         end
       done;
       Mcl.Placement.well_formed p
       && Array.for_all (fun i -> Mcl.Placement.mem p i = registered.(i))
            (Array.init n (fun i -> i)))

let () =
  Alcotest.run "components"
    [ ("segment",
       [ Alcotest.test_case "default region" `Quick test_segment_default_region;
         Alcotest.test_case "fence region" `Quick test_segment_fence_region;
         Alcotest.test_case "fences ignored" `Quick test_segment_no_fences_mode;
         Alcotest.test_case "boundary gap" `Quick test_segment_boundary_gap;
         Alcotest.test_case "region area" `Quick test_segment_region_area ]);
      ("placement",
       [ Alcotest.test_case "rows sorted" `Quick test_placement_rows_sorted;
         Alcotest.test_case "remove/membership" `Quick test_placement_remove_and_membership;
         Alcotest.test_case "iter in range" `Quick test_placement_iter_in_range;
         QCheck_alcotest.to_alcotest prop_placement_add_remove_random ]);
      ("routability",
       [ Alcotest.test_case "row_ok periodicity" `Quick test_row_ok_periodicity;
         Alcotest.test_case "x_ok and nearest" `Quick test_x_ok_and_nearest;
         Alcotest.test_case "feasible range" `Quick test_feasible_range_stops_at_conflicts ]) ]
