module Rect = Mcl_geom.Rect
open Mcl_netlist

let ct ?(edge_type = 0) ?(pins = []) id name w h =
  Cell_type.make ~type_id:id ~name ~width:w ~height:h ~edge_type ~pins ()

let check_legal design =
  match Mcl_eval.Legality.check design with
  | [] -> ()
  | vs ->
    Alcotest.failf "illegal result: %s"
      (String.concat ", "
         (List.map (Format.asprintf "%a" Mcl_eval.Legality.pp_violation)
            (List.filteri (fun i _ -> i < 8) vs)))

(* -- tiny hand designs -- *)

let simple_design () =
  let fp = Floorplan.make ~num_sites:60 ~num_rows:8 ~site_width:2 ~row_height:20 () in
  let types = [| ct 0 "a" 6 1; ct 1 "b" 8 2 |] in
  let cells =
    [| Cell.make ~id:0 ~type_id:0 ~gp_x:10 ~gp_y:3 ();
       Cell.make ~id:1 ~type_id:0 ~gp_x:12 ~gp_y:3 ();  (* overlaps 0 *)
       Cell.make ~id:2 ~type_id:1 ~gp_x:11 ~gp_y:3 ();  (* double height on odd row *)
       Cell.make ~id:3 ~type_id:0 ~gp_x:50 ~gp_y:7 () |]
  in
  Design.make ~name:"simple" ~floorplan:fp ~cell_types:types ~cells ()

let test_simple_legalize () =
  let d = simple_design () in
  let cfg = { Mcl.Config.default with Mcl.Config.consider_routability = false } in
  let stats = Mcl.Mgl.run cfg d in
  Alcotest.(check int) "all legalized" 4 stats.Mcl.Mgl.legalized;
  check_legal d;
  (* double-height cell must be on even row *)
  Alcotest.(check int) "parity" 0 (d.Design.cells.(2).Cell.y mod 2);
  (* displacements should be small on this easy case *)
  Alcotest.(check bool) "avg disp small" true
    (Mcl_eval.Metrics.average_displacement d < 3.0)

let test_already_legal_stays () =
  (* non-overlapping cells at legal positions should barely move *)
  let fp = Floorplan.make ~num_sites:60 ~num_rows:8 ~site_width:2 ~row_height:20 () in
  let types = [| ct 0 "a" 6 1 |] in
  let cells =
    Array.init 5 (fun i -> Cell.make ~id:i ~type_id:0 ~gp_x:(i * 10) ~gp_y:2 ())
  in
  let d = Design.make ~name:"legal" ~floorplan:fp ~cell_types:types ~cells () in
  let cfg = { Mcl.Config.default with Mcl.Config.consider_routability = false } in
  ignore (Mcl.Mgl.run cfg d);
  check_legal d;
  Alcotest.(check (float 1e-9)) "no displacement" 0.0
    (Mcl_eval.Metrics.average_displacement d)

let test_fence_respected () =
  let fp = Floorplan.make ~num_sites:80 ~num_rows:8 ~site_width:2 ~row_height:20 () in
  let types = [| ct 0 "a" 6 1 |] in
  let fence =
    Fence.make ~fence_id:1 ~name:"f" ~rects:[ Rect.make ~xl:50 ~yl:0 ~xh:80 ~yh:8 ]
  in
  let cells =
    [| (* fenced cell starting OUTSIDE its fence *)
       Cell.make ~id:0 ~type_id:0 ~region:1 ~gp_x:10 ~gp_y:2 ();
       (* default cell starting INSIDE the fence *)
       Cell.make ~id:1 ~type_id:0 ~region:0 ~gp_x:60 ~gp_y:2 () |]
  in
  let d =
    Design.make ~name:"fence" ~floorplan:fp ~cell_types:types ~cells
      ~fences:[| fence |] ()
  in
  let cfg = { Mcl.Config.default with Mcl.Config.consider_routability = false } in
  ignore (Mcl.Mgl.run cfg d);
  check_legal d;
  Alcotest.(check bool) "cell 0 pulled into fence" true (d.Design.cells.(0).Cell.x >= 50);
  Alcotest.(check bool) "cell 1 pushed out of fence" true
    (d.Design.cells.(1).Cell.x + 6 <= 50)

let test_fixed_cells_are_obstacles () =
  let fp = Floorplan.make ~num_sites:40 ~num_rows:4 ~site_width:2 ~row_height:20 () in
  let types = [| ct 0 "a" 10 1 |] in
  let cells =
    [| Cell.make ~id:0 ~type_id:0 ~is_fixed:true ~gp_x:10 ~gp_y:1 ();
       Cell.make ~id:1 ~type_id:0 ~gp_x:12 ~gp_y:1 () |]
  in
  let d = Design.make ~name:"fixed" ~floorplan:fp ~cell_types:types ~cells () in
  let cfg = { Mcl.Config.default with Mcl.Config.consider_routability = false } in
  ignore (Mcl.Mgl.run cfg d);
  check_legal d;
  Alcotest.(check int) "fixed did not move" 10 d.Design.cells.(0).Cell.x

(* -- generated designs: qcheck legality property -- *)

let legal_after_mgl ~routability ~fences seed =
  let spec =
    { Mcl_gen.Spec.default with
      Mcl_gen.Spec.seed;
      num_cells = 120 + (seed mod 7 * 30);
      density = 0.4 +. float_of_int (seed mod 5) /. 10.0;
      height_mix = [ (1, 0.7); (2, 0.2); (3, 0.1) ];
      num_fences = (if fences then 2 else 0);
      fence_cell_frac = (if fences then 0.15 else 0.0);
      routability;
      name = Printf.sprintf "prop%d" seed }
  in
  let d = Mcl_gen.Generator.generate spec in
  let cfg =
    { Mcl.Config.default with
      Mcl.Config.consider_routability = routability;
      consider_fences = fences }
  in
  ignore (Mcl.Mgl.run cfg d);
  Mcl_eval.Legality.check d = []

let prop_mgl_legal_plain =
  QCheck.Test.make ~name:"MGL output legal (no fences/routability)" ~count:12
    QCheck.(int_range 1 1000)
    (fun seed -> legal_after_mgl ~routability:false ~fences:false seed)

let prop_mgl_legal_full =
  QCheck.Test.make ~name:"MGL output legal (fences + routability)" ~count:12
    QCheck.(int_range 1 1000)
    (fun seed -> legal_after_mgl ~routability:true ~fences:true seed)

let prop_mll_legal =
  QCheck.Test.make ~name:"MLL baseline output legal" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
       let spec =
         { Mcl_gen.Spec.default with
           Mcl_gen.Spec.seed;
           num_cells = 150;
           density = 0.6;
           name = "mll" }
       in
       let d = Mcl_gen.Generator.generate spec in
       let cfg = { Mcl.Config.default with Mcl.Config.consider_routability = false } in
       ignore (Mcl.Mgl.run ~disp_from:`Current cfg d);
       Mcl_eval.Legality.check d = [])

let test_mgl_beats_mll_on_displacement () =
  (* the whole point of MGL: displacement from GP should not be worse *)
  let spec =
    { Mcl_gen.Spec.default with
      Mcl_gen.Spec.seed = 42;
      num_cells = 400;
      density = 0.7;
      name = "gp_vs_cur" }
  in
  let cfg = Mcl.Config.total_displacement in
  let d1 = Mcl_gen.Generator.generate spec in
  ignore (Mcl.Mgl.run ~disp_from:`Gp cfg d1);
  let mgl_disp = Mcl_eval.Metrics.total_displacement_sites d1 in
  let d2 = Mcl_gen.Generator.generate spec in
  ignore (Mcl.Mgl.run ~disp_from:`Current cfg d2);
  let mll_disp = Mcl_eval.Metrics.total_displacement_sites d2 in
  Alcotest.(check bool)
    (Printf.sprintf "mgl (%.0f) <= mll (%.0f) * 1.05" mgl_disp mll_disp)
    true
    (mgl_disp <= mll_disp *. 1.05)

let prop_mgl_legal_with_macros =
  QCheck.Test.make ~name:"MGL output legal (fixed macros)" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
       let spec =
         { Mcl_gen.Spec.default with
           Mcl_gen.Spec.seed;
           num_cells = 250;
           density = 0.5;
           height_mix = [ (1, 0.8); (2, 0.2) ];
           num_macros = 3;
           name = Printf.sprintf "macros%d" seed }
       in
       let d = Mcl_gen.Generator.generate spec in
       let macro_positions =
         Array.to_list d.Design.cells
         |> List.filter_map (fun (c : Cell.t) ->
             if c.Cell.is_fixed then Some (c.Cell.id, c.Cell.x, c.Cell.y) else None)
       in
       ignore (Mcl.Pipeline.run Mcl.Config.default d);
       Mcl_eval.Legality.check d = []
       && List.length macro_positions >= 1
       && List.for_all
            (fun (id, x, y) ->
               d.Design.cells.(id).Cell.x = x && d.Design.cells.(id).Cell.y = y)
            macro_positions)


let () =
  Alcotest.run "mgl"
    [ ("hand",
       [ Alcotest.test_case "simple overlap" `Quick test_simple_legalize;
         Alcotest.test_case "already legal" `Quick test_already_legal_stays;
         Alcotest.test_case "fence respected" `Quick test_fence_respected;
         Alcotest.test_case "fixed obstacle" `Quick test_fixed_cells_are_obstacles;
         Alcotest.test_case "mgl beats mll" `Slow test_mgl_beats_mll_on_displacement ]);
      ("props",
       [ QCheck_alcotest.to_alcotest prop_mgl_legal_plain;
         QCheck_alcotest.to_alcotest prop_mgl_legal_full;
         QCheck_alcotest.to_alcotest prop_mll_legal;
         QCheck_alcotest.to_alcotest prop_mgl_legal_with_macros ]) ]
