module Rect = Mcl_geom.Rect
module Interval = Mcl_geom.Interval
open Mcl_netlist

let ct ?(edge_type = 0) ?(pins = []) id name w h =
  Cell_type.make ~type_id:id ~name ~width:w ~height:h ~edge_type ~pins ()

let small_design () =
  let fp =
    Floorplan.make ~num_sites:100 ~num_rows:20 ~site_width:1 ~row_height:10
      ~hrail_period:4 ~hrail_halfwidth:2 ~vrail_pitch:25 ~vrail_width:2
      ~edge_spacing:[| [| 0; 1 |]; [| 1; 2 |] |] ()
  in
  let types = [| ct 0 "inv" 4 1; ct 1 "dff2" 8 2 ~edge_type:1 |] in
  let fence =
    Fence.make ~fence_id:1 ~name:"f1"
      ~rects:[ Rect.make ~xl:60 ~yl:0 ~xh:100 ~yh:10 ]
  in
  let cells =
    [| Cell.make ~id:0 ~type_id:0 ~gp_x:10 ~gp_y:3 ();
       Cell.make ~id:1 ~type_id:1 ~gp_x:20 ~gp_y:4 ();
       Cell.make ~id:2 ~type_id:0 ~region:1 ~gp_x:70 ~gp_y:2 () |]
  in
  let nets =
    [| Net.make ~net_id:0
         ~endpoints:
           [ Net.Cell_pin { cell = 0; dx = 1; dy = 2 };
             Net.Cell_pin { cell = 1; dx = 0; dy = 0 };
             Net.Fixed_pin { px = 50; py = 100 } ] |]
  in
  Design.make ~name:"tiny" ~floorplan:fp ~cell_types:types ~cells ~nets
    ~fences:[| fence |] ()

let test_design_accessors () =
  let d = small_design () in
  Alcotest.(check int) "cells" 3 (Design.num_cells d);
  Alcotest.(check int) "width" 8 (Design.width d d.Design.cells.(1));
  Alcotest.(check int) "height" 2 (Design.height d d.Design.cells.(1));
  Alcotest.(check int) "max height" 2 (Design.max_height d);
  Alcotest.(check int) "|C_1|" 2 (Design.cells_of_height d 1);
  Alcotest.(check int) "|C_2|" 1 (Design.cells_of_height d 2);
  let r = Design.cell_rect d d.Design.cells.(1) in
  Alcotest.(check bool) "rect" true
    (Rect.equal r (Rect.make ~xl:20 ~yl:4 ~xh:28 ~yh:6))

let test_region_covers () =
  let d = small_design () in
  Alcotest.(check bool) "fence covers" true (Design.region_covers d ~region:1 ~x:70 ~y:5);
  Alcotest.(check bool) "fence excludes" false (Design.region_covers d ~region:1 ~x:10 ~y:5);
  Alcotest.(check bool) "default excludes fence area" false
    (Design.region_covers d ~region:0 ~x:70 ~y:5);
  Alcotest.(check bool) "default covers outside" true
    (Design.region_covers d ~region:0 ~x:10 ~y:5);
  (* fence only spans rows 0..9 *)
  Alcotest.(check bool) "fence rows bounded" false
    (Design.region_covers d ~region:1 ~x:70 ~y:15)

let test_snapshot_restore () =
  let d = small_design () in
  let snap = Design.snapshot d in
  d.Design.cells.(0).Cell.x <- 55;
  d.Design.cells.(0).Cell.y <- 7;
  Design.restore d snap;
  Alcotest.(check int) "x restored" 10 d.Design.cells.(0).Cell.x;
  Alcotest.(check int) "y restored" 3 d.Design.cells.(0).Cell.y;
  d.Design.cells.(1).Cell.x <- 1;
  Design.reset_to_gp d;
  Alcotest.(check int) "reset to gp" 20 d.Design.cells.(1).Cell.x

let test_floorplan_rails () =
  let d = small_design () in
  let fp = d.Design.floorplan in
  let h = Floorplan.hrail_stripes fp in
  (* rows 0,4,8,12,16,20 -> 6 stripes *)
  Alcotest.(check int) "hrail count" 6 (List.length h);
  (match h with
   | first :: _ ->
     Alcotest.(check bool) "first stripe at 0" true
       (Interval.equal first (Interval.make (-2) 2))
   | [] -> Alcotest.fail "no stripes");
  let v = Floorplan.vrail_stripes fp in
  (* sites 0,25,50,75,100 -> 5 stripes *)
  Alcotest.(check int) "vrail count" 5 (List.length v)

let test_spacing_table () =
  let d = small_design () in
  let fp = d.Design.floorplan in
  Alcotest.(check int) "0-0" 0 (Floorplan.spacing fp ~l:0 ~r:0);
  Alcotest.(check int) "0-1" 1 (Floorplan.spacing fp ~l:0 ~r:1);
  Alcotest.(check int) "1-1" 2 (Floorplan.spacing fp ~l:1 ~r:1);
  Alcotest.(check int) "out of range" 0 (Floorplan.spacing fp ~l:5 ~r:0)

let test_fence_row_intervals () =
  let f =
    Fence.make ~fence_id:1 ~name:"f"
      ~rects:
        [ Rect.make ~xl:0 ~yl:0 ~xh:10 ~yh:5;
          Rect.make ~xl:8 ~yl:0 ~xh:20 ~yh:3;
          Rect.make ~xl:30 ~yl:0 ~xh:40 ~yh:5 ]
  in
  (match Fence.row_intervals f ~row:1 with
   | [ a; b ] ->
     Alcotest.(check bool) "merged" true (Interval.equal a (Interval.make 0 20));
     Alcotest.(check bool) "second" true (Interval.equal b (Interval.make 30 40))
   | l -> Alcotest.failf "expected 2 intervals, got %d" (List.length l));
  (match Fence.row_intervals f ~row:4 with
   | [ a; b ] ->
     Alcotest.(check bool) "row4 first" true (Interval.equal a (Interval.make 0 10));
     Alcotest.(check bool) "row4 second" true (Interval.equal b (Interval.make 30 40))
   | l -> Alcotest.failf "expected 2 intervals, got %d" (List.length l));
  Alcotest.(check int) "row above" 0 (List.length (Fence.row_intervals f ~row:7))

let test_validation () =
  let fp = Floorplan.make ~num_sites:10 ~num_rows:4 () in
  let types = [| ct 0 "a" 2 1 |] in
  let bad_cells = [| Cell.make ~id:5 ~type_id:0 ~gp_x:0 ~gp_y:0 () |] in
  Alcotest.check_raises "bad id"
    (Invalid_argument "Design.make: cells must be indexed by id")
    (fun () ->
       ignore (Design.make ~name:"x" ~floorplan:fp ~cell_types:types ~cells:bad_cells ()))

let test_layers () =
  Alcotest.(check bool) "above M1" true (Layer.above Layer.M1 = Some Layer.M2);
  Alcotest.(check bool) "above M3" true (Layer.above Layer.M3 = None);
  Alcotest.(check bool) "roundtrip" true
    (List.for_all
       (fun l -> Layer.of_string (Layer.to_string l) = Some l)
       [ Layer.M1; Layer.M2; Layer.M3 ])

let () =
  Alcotest.run "netlist"
    [ ("design",
       [ Alcotest.test_case "accessors" `Quick test_design_accessors;
         Alcotest.test_case "region covers" `Quick test_region_covers;
         Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
         Alcotest.test_case "validation" `Quick test_validation ]);
      ("floorplan",
       [ Alcotest.test_case "rails" `Quick test_floorplan_rails;
         Alcotest.test_case "spacing" `Quick test_spacing_table ]);
      ("fence", [ Alcotest.test_case "row intervals" `Quick test_fence_row_intervals ]);
      ("layer", [ Alcotest.test_case "layers" `Quick test_layers ]) ]
