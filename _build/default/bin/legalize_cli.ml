(* Command-line front end: legalize a design from a benchmark file or a
   generated suite entry, with any of the implemented legalizers, and
   report the paper's quality metrics. *)

open Cmdliner

type algo = Pipeline | Mgl_only | Greedy | Abacus | Mll

let algo_conv =
  Arg.enum
    [ ("pipeline", Pipeline); ("mgl", Mgl_only); ("greedy", Greedy);
      ("abacus", Abacus); ("mll", Mll) ]

let load ~input ~suite ~scale =
  match input, suite with
  | Some path, _ ->
    (match Mcl_bookshelf.Parser.parse_file path with
     | Ok d -> d
     | Error msg -> failwith (Printf.sprintf "%s: %s" path msg))
  | None, Some name ->
    (match Mcl_gen.Suites.find ~scale name with
     | Some spec -> Mcl_gen.Generator.generate spec
     | None -> failwith (Printf.sprintf "unknown suite benchmark %S" name))
  | None, None -> Mcl_gen.Generator.generate Mcl_gen.Spec.default

let run input suite scale algo threads no_fences no_routability objective_total
    output verbose =
  let design = load ~input ~suite ~scale in
  let config =
    { (if objective_total then Mcl.Config.total_displacement else Mcl.Config.default)
      with
      Mcl.Config.threads;
      consider_fences =
        (not no_fences)
        && (if objective_total then false else not no_fences);
      consider_routability =
        (not no_routability)
        && (if objective_total then false else not no_routability) }
  in
  let gp_hpwl = Mcl_eval.Metrics.hpwl design in
  let t0 = Unix.gettimeofday () in
  (match algo with
   | Pipeline ->
     let report = Mcl.Pipeline.run config design in
     if verbose then Format.printf "%a@." Mcl.Pipeline.pp_report report
   | Mgl_only -> ignore (Mcl.Scheduler.run config design)
   | Greedy -> ignore (Mcl.Baseline_greedy.run config design)
   | Abacus -> ignore (Mcl.Baseline_abacus.run config design)
   | Mll -> ignore (Mcl.Scheduler.run ~disp_from:`Current config design));
  let elapsed = Unix.gettimeofday () -. t0 in
  let violations = Mcl_eval.Legality.check design in
  let score = Mcl_eval.Score.evaluate ~gp_hpwl design in
  Format.printf "design     : %s (%d cells)@." design.Mcl_netlist.Design.name
    (Mcl_netlist.Design.num_cells design);
  Format.printf "legal      : %s@."
    (if violations = [] then "yes"
     else Printf.sprintf "NO (%d violations)" (List.length violations));
  Format.printf "avg disp   : %.4f rows@." score.Mcl_eval.Score.avg_disp;
  Format.printf "max disp   : %.1f rows@." score.Mcl_eval.Score.max_disp;
  Format.printf "total disp : %.0f sites@."
    (Mcl_eval.Metrics.total_displacement_sites design);
  Format.printf "hpwl delta : %+.4f@." score.Mcl_eval.Score.s_hpwl;
  Format.printf "pin viol   : %d@." score.Mcl_eval.Score.pin_violations;
  Format.printf "edge viol  : %d@." score.Mcl_eval.Score.edge_violations;
  Format.printf "score S    : %.4f@." score.Mcl_eval.Score.score;
  Format.printf "runtime    : %.2fs@." elapsed;
  (match output with
   | Some path ->
     Mcl_bookshelf.Writer.write_file path design;
     Format.printf "wrote      : %s@." path
   | None -> ());
  if violations <> [] then exit 1

let cmd =
  let input =
    Arg.(value & opt (some string) None
         & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input benchmark file.")
  in
  let suite =
    Arg.(value & opt (some string) None
         & info [ "b"; "benchmark" ] ~docv:"NAME"
             ~doc:"Generate a named suite benchmark (e.g. des_perf_1).")
  in
  let scale =
    Arg.(value & opt float 1.0
         & info [ "scale" ] ~doc:"Suite size multiplier.")
  in
  let algo =
    Arg.(value & opt algo_conv Pipeline
         & info [ "a"; "algo" ] ~doc:"Legalizer: pipeline|mgl|greedy|abacus|mll.")
  in
  let threads =
    Arg.(value & opt int 1 & info [ "j"; "threads" ] ~doc:"MGL scheduler domains.")
  in
  let no_fences = Arg.(value & flag & info [ "no-fences" ] ~doc:"Ignore fences.") in
  let no_rout =
    Arg.(value & flag & info [ "no-routability" ] ~doc:"Ignore routability rules.")
  in
  let total =
    Arg.(value & flag
         & info [ "total-displacement" ]
             ~doc:"Optimize total instead of weighted-average displacement \
                   (also disables fences and routability, as in Table 2).")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the legalized design.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Stage stats.") in
  Cmd.v
    (Cmd.info "mcl-legalize" ~doc:"Mixed-cell-height legalization (DAC'18 reproduction)")
    Term.(const run $ input $ suite $ scale $ algo $ threads $ no_fences
          $ no_rout $ total $ output $ verbose)

let () = exit (Cmd.eval cmd)
