bin/genbench.mli:
