bin/genbench.ml: Arg Cmd Cmdliner Filename List Mcl_bookshelf Mcl_gen Mcl_netlist Printf Term Unix
