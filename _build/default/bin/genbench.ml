(* Generate suite benchmarks to disk in the bookshelf-style format. *)

open Cmdliner

let run suite scale outdir =
  let specs =
    match suite with
    | "iccad2017" -> Mcl_gen.Suites.iccad2017 ~scale ()
    | "ispd2015" -> Mcl_gen.Suites.ispd2015 ~scale ()
    | name ->
      (match Mcl_gen.Suites.find ~scale name with
       | Some s -> [ s ]
       | None -> failwith (Printf.sprintf "unknown suite or benchmark %S" name))
  in
  (try Unix.mkdir outdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun spec ->
       let d = Mcl_gen.Generator.generate spec in
       let path = Filename.concat outdir (spec.Mcl_gen.Spec.name ^ ".mcl") in
       Mcl_bookshelf.Writer.write_file path d;
       Printf.printf "%s: %d cells\n%!" path (Mcl_netlist.Design.num_cells d))
    specs

let cmd =
  let suite =
    Arg.(value & pos 0 string "iccad2017"
         & info [] ~docv:"SUITE" ~doc:"iccad2017, ispd2015 or a benchmark name.")
  in
  let scale = Arg.(value & opt float 1.0 & info [ "scale" ]) in
  let outdir = Arg.(value & opt string "benchmarks" & info [ "o"; "outdir" ]) in
  Cmd.v (Cmd.info "mcl-genbench" ~doc:"Generate benchmark files")
    Term.(const run $ suite $ scale $ outdir)

let () = exit (Cmd.eval cmd)
