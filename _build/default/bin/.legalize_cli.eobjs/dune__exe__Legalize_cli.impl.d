bin/legalize_cli.ml: Arg Cmd Cmdliner Format List Mcl Mcl_bookshelf Mcl_eval Mcl_gen Mcl_netlist Printf Term Unix
