bin/legalize_cli.mli:
