examples/routability_demo.mli:
