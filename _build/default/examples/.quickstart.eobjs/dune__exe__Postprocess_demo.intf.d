examples/postprocess_demo.mli:
