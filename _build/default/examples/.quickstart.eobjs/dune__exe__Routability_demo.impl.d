examples/routability_demo.ml: Mcl Mcl_eval Mcl_gen Printf
