examples/quickstart.ml: Array Format List Mcl Mcl_bookshelf Mcl_eval Mcl_gen Mcl_netlist Printf
