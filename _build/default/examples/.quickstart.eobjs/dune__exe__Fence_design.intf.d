examples/fence_design.mli:
