examples/quickstart.mli:
