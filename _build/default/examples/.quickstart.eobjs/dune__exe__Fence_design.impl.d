examples/fence_design.ml: Array Cell Design Fence Format List Mcl Mcl_eval Mcl_gen Mcl_geom Mcl_netlist Printf
