examples/mgl_vs_mll.mli:
