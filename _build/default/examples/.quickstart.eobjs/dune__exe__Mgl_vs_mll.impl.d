examples/mgl_vs_mll.ml: Array Cell Cell_type Design Floorplan List Mcl Mcl_eval Mcl_gen Mcl_geom Mcl_netlist Printf
