examples/postprocess_demo.ml: Array Cell Design Mcl Mcl_eval Mcl_gen Mcl_netlist Printf String
