(* The two post-processing stages in action (paper Sec. 3.2/3.3 and
   Fig. 6): an ASCII rendering of the displacement profile of the
   largest same-type cell group before and after the matching-based
   maximum-displacement optimization, followed by the fixed-row-order
   refinement.

   Run with:  dune exec examples/postprocess_demo.exe *)

open Mcl_netlist

let histogram design =
  (* displacement histogram over all movable cells, 1-row bins *)
  let bins = Array.make 24 0 in
  Array.iter
    (fun (c : Cell.t) ->
       if not c.Cell.is_fixed then begin
         let d = Mcl_eval.Metrics.displacement design c in
         let b = min 23 (int_of_float d) in
         bins.(b) <- bins.(b) + 1
       end)
    design.Design.cells;
  bins

let render bins =
  let max_count = Array.fold_left max 1 bins in
  Array.iteri
    (fun i count ->
       if count > 0 || i < 12 then begin
         let bar = 50 * count / max_count in
         Printf.printf "%3d rows |%-50s| %d\n" i (String.make bar '#') count
       end)
    bins

let () =
  let spec =
    { Mcl_gen.Spec.default with
      Mcl_gen.Spec.name = "postprocess_demo";
      seed = 9;
      num_cells = 2500;
      density = 0.8;
      height_mix = [ (1, 0.85); (2, 0.1); (3, 0.05) ] }
  in
  let design = Mcl_gen.Generator.generate spec in
  let cfg = Mcl.Config.default in
  ignore (Mcl.Scheduler.run cfg design);
  Printf.printf "after MGL:            avg %.3f, max %.1f rows\n"
    (Mcl_eval.Metrics.average_displacement design)
    (Mcl_eval.Metrics.max_displacement design);
  render (histogram design);
  let s = Mcl.Matching_opt.run cfg design in
  Printf.printf "\nafter matching:       avg %.3f, max %.1f rows (%d cells traded)\n"
    (Mcl_eval.Metrics.average_displacement design)
    (Mcl_eval.Metrics.max_displacement design)
    s.Mcl.Matching_opt.cells_moved;
  render (histogram design);
  let r = Mcl.Row_order_opt.run cfg design in
  Printf.printf "\nafter row-order MCF:  avg %.3f, max %.1f rows (objective %.0f -> %.0f)\n"
    (Mcl_eval.Metrics.average_displacement design)
    (Mcl_eval.Metrics.max_displacement design)
    r.Mcl.Row_order_opt.weighted_disp_before r.Mcl.Row_order_opt.weighted_disp_after;
  assert (Mcl_eval.Legality.is_legal design)
