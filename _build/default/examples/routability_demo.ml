(* Routability-driven legalization (paper Sec. 3.4, Fig. 1): the
   legalizer avoids placing cells where their signal pins would short
   against same-layer P/G stripes or IO pins, or lose access under
   next-layer metal. This example compares a routability-blind run with
   the full flow on the same design.

   Run with:  dune exec examples/routability_demo.exe *)

let () =
  let spec =
    { Mcl_gen.Spec.default with
      Mcl_gen.Spec.name = "routability_demo";
      seed = 31;
      num_cells = 1500;
      density = 0.55;
      height_mix = [ (1, 0.8); (2, 0.2) ];
      num_io_pins = 60;
      routability = true }
  in
  let run ~aware =
    let design = Mcl_gen.Generator.generate spec in
    let cfg = { Mcl.Config.default with Mcl.Config.consider_routability = aware } in
    ignore (Mcl.Pipeline.run cfg design);
    assert (Mcl_eval.Legality.is_legal design);
    let pins, edges = Mcl_eval.Routability_check.counts design in
    (pins, edges, Mcl_eval.Metrics.average_displacement design)
  in
  let p0, e0, d0 = run ~aware:false in
  Printf.printf "routability-blind: %4d pin violations, %4d edge violations, avg disp %.3f\n"
    p0 e0 d0;
  let p1, e1, d1 = run ~aware:true in
  Printf.printf "routability-aware: %4d pin violations, %4d edge violations, avg disp %.3f\n"
    p1 e1 d1;
  Printf.printf
    "\nThe aware flow trades a little displacement (%.3f -> %.3f) for %d fewer\n\
     pin violations and %d fewer edge violations.\n"
    d0 d1 (p0 - p1) (e0 - e1);
  (* the per-violation detail is available too *)
  let design = Mcl_gen.Generator.generate spec in
  ignore (Mcl.Pipeline.run Mcl.Config.default design);
  match Mcl_eval.Routability_check.pin_violations design with
  | [] -> print_endline "no residual pin violations to show"
  | v :: _ ->
    Printf.printf
      "example residual violation: cell %d pin %s, %s against the %s\n" v.Mcl_eval.Routability_check.cell
      v.Mcl_eval.Routability_check.pin_name
      (match v.Mcl_eval.Routability_check.kind with
       | `Short -> "short"
       | `Access -> "blocked access")
      (match v.Mcl_eval.Routability_check.against with
       | `Hrail -> "horizontal P/G stripe"
       | `Vrail -> "vertical P/G stripe"
       | `Io -> "an IO pin")
