(* Quickstart: generate a small mixed-cell-height benchmark, legalize
   it with the full three-stage pipeline, and report quality.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. Build (or load) a design. Here: a 1200-cell synthetic benchmark
     with double- and triple-height cells, one fence region, a P/G rail
     grid and IO pins. *)
  let spec =
    { Mcl_gen.Spec.default with
      Mcl_gen.Spec.name = "quickstart";
      seed = 2024;
      num_cells = 1200;
      density = 0.65;
      height_mix = [ (1, 0.8); (2, 0.15); (3, 0.05) ];
      num_fences = 1;
      fence_cell_frac = 0.1 }
  in
  let design = Mcl_gen.Generator.generate spec in
  Printf.printf "design %s: %d cells, %d nets, %d fences, die %dx%d sites\n"
    design.Mcl_netlist.Design.name
    (Mcl_netlist.Design.num_cells design)
    (Array.length design.Mcl_netlist.Design.nets)
    (Array.length design.Mcl_netlist.Design.fences)
    design.Mcl_netlist.Design.floorplan.Mcl_netlist.Floorplan.num_sites
    design.Mcl_netlist.Design.floorplan.Mcl_netlist.Floorplan.num_rows;

  (* The GP input overlaps heavily: *)
  let overlaps_before =
    Mcl_eval.Legality.check design
    |> List.filter (function Mcl_eval.Legality.Overlap _ -> true | _ -> false)
    |> List.length
  in
  Printf.printf "GP input: %d overlapping pairs (not legal yet)\n" overlaps_before;

  (* 2. Legalize: MGL insertion, matching-based max-displacement
     optimization, and the fixed-row-order MCF refinement. *)
  let gp_hpwl = Mcl_eval.Metrics.hpwl design in
  let report = Mcl.Pipeline.run Mcl.Config.default design in
  Format.printf "pipeline: %a@." Mcl.Pipeline.pp_report report;

  (* 3. Audit and score the result. *)
  assert (Mcl_eval.Legality.is_legal design);
  let score = Mcl_eval.Score.evaluate ~gp_hpwl design in
  Format.printf "result: %a@." Mcl_eval.Score.pp score;

  (* 4. Designs serialize to a plain-text format. *)
  Mcl_bookshelf.Writer.write_file "quickstart_legal.mcl" design;
  print_endline "wrote quickstart_legal.mcl"
