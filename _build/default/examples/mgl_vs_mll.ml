(* The paper's Figure 3 scenario, at toy and at benchmark scale: MGL
   measures displacement from GP positions, MLL from current positions.

   Run with:  dune exec examples/mgl_vs_mll.exe *)

open Mcl_netlist

(* -- the toy: one row, a pre-displaced cell D, a target T -- *)

let toy_design () =
  let fp =
    Floorplan.make ~num_sites:12 ~num_rows:1 ~site_width:2 ~row_height:20 ()
  in
  let types =
    [| Cell_type.make ~type_id:0 ~name:"w1" ~width:1 ~height:1 ();
       Cell_type.make ~type_id:1 ~name:"w2" ~width:2 ~height:1 () |]
  in
  let cells =
    [| Cell.make ~id:0 ~type_id:1 ~gp_x:1 ~gp_y:0 ();   (* A, in place *)
       Cell.make ~id:1 ~type_id:0 ~gp_x:4 ~gp_y:0 ();   (* D, pushed left earlier *)
       Cell.make ~id:2 ~type_id:0 ~gp_x:9 ~gp_y:0 ();   (* B, pushed right earlier *)
       Cell.make ~id:3 ~type_id:1 ~gp_x:3 ~gp_y:0 () |] (* T, to insert *)
  in
  cells.(1).Cell.x <- 3;
  cells.(2).Cell.x <- 10;
  Design.make ~name:"fig3" ~floorplan:fp ~cell_types:types ~cells ()

let insert_target ~disp_from =
  let d = toy_design () in
  let cfg =
    { Mcl.Config.total_displacement with Mcl.Config.objective = Mcl.Config.Total }
  in
  let segments = Mcl.Segment.build ~respect_fences:false d in
  let placement = Mcl.Placement.create d in
  List.iter (Mcl.Placement.add placement) [ 0; 1; 2 ];
  let ctx =
    Mcl.Insertion.make_ctx ~disp_from cfg d ~placement ~segments ~routability:None
  in
  let window = Mcl_geom.Rect.make ~xl:0 ~yl:0 ~xh:12 ~yh:1 in
  (match Mcl.Insertion.best ctx ~target:3 ~window with
   | Some cand -> Mcl.Insertion.apply ctx ~target:3 cand
   | None -> failwith "no insertion point");
  d

let () =
  print_endline "-- toy (paper Fig. 3) --";
  let show tag d =
    Printf.printf "%s: T@%d, D@%d -> total displacement %.0f sites\n" tag
      d.Design.cells.(3).Cell.x d.Design.cells.(1).Cell.x
      (Mcl_eval.Metrics.total_displacement_sites d)
  in
  show "MLL" (insert_target ~disp_from:`Current);
  show "MGL" (insert_target ~disp_from:`Gp);

  (* -- at benchmark scale -- *)
  print_endline "\n-- 2000-cell benchmark --";
  let spec =
    { Mcl_gen.Spec.default with
      Mcl_gen.Spec.name = "mgl_vs_mll";
      num_cells = 2000;
      density = 0.75;
      routability = false }
  in
  let run disp_from =
    let d = Mcl_gen.Generator.generate spec in
    ignore (Mcl.Scheduler.run ~disp_from Mcl.Config.total_displacement d);
    assert (Mcl_eval.Legality.is_legal d);
    Mcl_eval.Metrics.total_displacement_sites d
  in
  let mll = run `Current and mgl = run `Gp in
  Printf.printf "MLL total displacement: %.0f sites\n" mll;
  Printf.printf "MGL total displacement: %.0f sites (%.1f%% better)\n" mgl
    (100.0 *. (mll -. mgl) /. mll)
