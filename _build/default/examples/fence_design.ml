(* Fence-aware legalization: cells assigned to a fence must end inside
   it, everything else must stay out (paper Sec. 2). This example
   builds a design whose GP leaks cells across both fence boundaries
   and shows the legalizer pulling everything to the right side.

   Run with:  dune exec examples/fence_design.exe *)

open Mcl_netlist

let count_misplaced design =
  Array.fold_left
    (fun (inside_wrong, outside_wrong) (c : Cell.t) ->
       let r = Design.cell_rect design c in
       let ok =
         let all_ok = ref true in
         for y = r.Mcl_geom.Rect.y.Mcl_geom.Interval.lo
           to r.Mcl_geom.Rect.y.Mcl_geom.Interval.hi - 1 do
           for x = r.Mcl_geom.Rect.x.Mcl_geom.Interval.lo
             to r.Mcl_geom.Rect.x.Mcl_geom.Interval.hi - 1 do
             if not (Design.region_covers design ~region:c.Cell.region ~x ~y) then
               all_ok := false
           done
         done;
         !all_ok
       in
       if ok then (inside_wrong, outside_wrong)
       else if c.Cell.region > 0 then (inside_wrong + 1, outside_wrong)
       else (inside_wrong, outside_wrong + 1))
    (0, 0) design.Design.cells

let () =
  let spec =
    { Mcl_gen.Spec.default with
      Mcl_gen.Spec.name = "fence_demo";
      seed = 77;
      num_cells = 1500;
      density = 0.6;
      num_fences = 3;
      fence_cell_frac = 0.2;
      height_mix = [ (1, 0.85); (2, 0.15) ] }
  in
  let design = Mcl_gen.Generator.generate spec in
  Array.iter
    (fun (f : Fence.t) ->
       List.iter
         (fun r -> Format.printf "fence %d (%s): %a@." f.Fence.fence_id f.Fence.name Mcl_geom.Rect.pp r)
         f.Fence.rects)
    design.Design.fences;
  let fenced_wrong, default_wrong = count_misplaced design in
  Printf.printf
    "GP input: %d fenced cells outside their fence, %d default cells inside a fence\n"
    fenced_wrong default_wrong;
  ignore (Mcl.Pipeline.run Mcl.Config.default design);
  let fenced_wrong, default_wrong = count_misplaced design in
  Printf.printf
    "legalized: %d fenced cells outside, %d default cells inside (both must be 0)\n"
    fenced_wrong default_wrong;
  assert (fenced_wrong = 0 && default_wrong = 0);
  assert (Mcl_eval.Legality.is_legal design);
  Printf.printf "average displacement: %.3f row heights, max: %.1f\n"
    (Mcl_eval.Metrics.average_displacement design)
    (Mcl_eval.Metrics.max_displacement design)
